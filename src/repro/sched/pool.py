"""The persistent warm worker pool.

Process-per-point execution (PR 3's :mod:`repro.analysis.parallel_sweep`)
pays a full interpreter ``fork``/``spawn`` plus a ``repro`` import for
*every* grid point.  At campaign scale — thousands of (model, problem, n,
params, seed) points, multiplied again by the chaos and adversary gates —
that overhead dominates the points themselves.  :class:`WorkerPool` keeps
``jobs`` long-lived worker processes alive instead: each worker imports
:mod:`repro` once, then receives pickled ``(key, fn, kwargs)`` task
messages over a pipe and sends outcomes back, so a task costs one pickle
round trip rather than one process launch (``benchmarks/bench_sched.py``
measures the difference).

The pool keeps the failure-isolation semantics the sweep runner already
promises (docs/ROBUSTNESS.md):

* **Crash isolation** — a worker that dies (``os._exit``, segfault, OOM
  kill) fails only the task it was running; the pool detects the dead
  pipe, reports a ``"crash"`` event, and respawns a fresh worker.
* **Watchdog timeouts** — a task given a ``timeout`` that overruns it has
  its worker killed (a hung worker cannot be recovered) and a
  ``"timeout"`` event reported; a replacement worker spawns on demand.
* **Recycling** — a worker is retired after ``max_tasks_per_worker``
  tasks and replaced, bounding how long any interpreter state a task
  leaked behind it can survive.  Process-per-point is exactly the
  ``max_tasks_per_worker=1`` corner of this design.

Retries are deliberately *not* the pool's job: callers
(:func:`repro.analysis.parallel_sweep.parallel_sweep`, the campaign
runner) own attempt bookkeeping so bounded-retry policy lives in one
place per caller.

Determinism: the pool neither reorders results (callers key events by
task) nor feeds any scheduling information into tasks, so a seeded task
set produces bit-identical outcomes whether run serially, process-per-
point, or on a warm pool — ``tests/property/test_sched_props.py`` pins
this three-way equality.
"""

from __future__ import annotations

import os
import stat
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

__all__ = ["WorkerPool", "PoolEvent", "DEFAULT_MAX_TASKS_PER_WORKER"]

#: Tasks a worker runs before it is retired and replaced.  High enough to
#: amortise the spawn cost away, low enough that leaked interpreter state
#: (an algorithm mutating a module global, an unclosed resource) has a
#: bounded lifetime.
DEFAULT_MAX_TASKS_PER_WORKER = 256


@dataclass(frozen=True)
class PoolEvent:
    """One completed (or failed) task, reported by :meth:`WorkerPool.events`.

    ``status`` is ``"ok"`` (``payload`` is the task's return value),
    ``"error"`` (the task raised; ``payload`` is ``"Type: message"``),
    ``"crash"`` (the worker process died mid-task; ``payload`` names the
    exit code) or ``"timeout"`` (the watchdog killed the worker;
    ``payload`` names the limit).  ``wall_time`` is the task's runtime in
    seconds as measured inside the worker (parent-side for crash/timeout).
    """

    key: str
    status: str
    payload: Any
    worker_id: int
    wall_time: float

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _close_inherited_sockets(keep_fd: int) -> None:
    """Close every socket fd a ``fork`` copied into this worker.

    A forked worker inherits whatever sockets its parent held open — an
    HTTP listen socket, accepted SSE connections, TCP fabric links.  The
    copies keep those connections half-alive: the parent closing its end
    no longer sends a FIN, so a peer writing to a "closed" socket never
    sees an error (the serve disconnect probe), and a killed server's
    port stays bound by its own workers.  Workers are compute-only;
    their duplex pipe (a socketpair) is the one socket they need.
    """
    try:
        fds = [int(name) for name in os.listdir("/proc/self/fd")]
    except (FileNotFoundError, NotADirectoryError, OSError):
        return  # no /proc (macOS): inherited sockets stay open, as before
    for fd in fds:
        if fd < 3 or fd == keep_fd:
            continue
        try:
            if stat.S_ISSOCK(os.fstat(fd).st_mode):
                os.close(fd)
        except OSError:
            continue


def _worker_main(conn, warmup: Optional[Callable[[], None]]) -> None:
    """Worker-process loop: import once, then serve tasks until told to stop."""
    import repro  # noqa: F401 - the warm import the pool exists to amortise

    _close_inherited_sockets(conn.fileno())
    # A forked worker inherits the scheduler's trace sink; exec spans
    # already ship home in replies, so writing here would double them.
    _tracing.TRACER.detach_sink()
    if warmup is not None:
        warmup()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        # Task messages are ("task", key, fn, kwargs[, trace]) — the
        # optional 5th element is the dispatching span's context dict
        # (docs/DISTRIBUTED.md, "Trace context on the wire").
        key, fn, kwargs = message[1], message[2], message[3]
        trace = message[4] if len(message) > 4 else None
        span = None
        if trace is not None and _tracing.TRACER.enabled:
            span = _tracing.TRACER.start_span(
                key, kind="exec",
                parent=_tracing.SpanContext.from_dict(trace),
                attrs={"key": key, "transport": "pipe"},
            )
            # Activate so PhaseCostRecords built by the task stamp this span.
            _tracing.TRACER.activate(None if span is None else span.context)
        start = time.perf_counter()
        try:
            value = fn(**kwargs)
            reply = ("ok", key, value, time.perf_counter() - start)
        except BaseException as exc:
            reply = (
                "error", key, f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start,
            )
        if span is not None:
            _tracing.TRACER.activate(None)
            _tracing.TRACER.finish(
                span, status="ok" if reply[0] == "ok" else "error"
            )
            # Ship the finished exec span home in the reply so the
            # scheduler-side tracer owns the single merged trace file.
            reply = reply + ([span.to_dict()],)
        try:
            conn.send(reply)
        except Exception as exc:
            # The outcome itself would not pickle; degrade to an error
            # event rather than silently dying with the task in flight.
            try:
                conn.send(("error", key, f"result not sendable: {exc}", 0.0))
            except Exception:
                break
    conn.close()


class _Task:
    __slots__ = ("key", "fn", "kwargs", "timeout", "trace")

    def __init__(self, key: str, fn: Callable[..., Any],
                 kwargs: Mapping[str, Any], timeout: Optional[float],
                 trace: Optional[Mapping[str, str]] = None) -> None:
        self.key = key
        self.fn = fn
        self.kwargs = dict(kwargs)
        self.timeout = timeout
        self.trace = None if trace is None else dict(trace)


class _Worker:
    __slots__ = ("id", "proc", "conn", "tasks_done", "current", "deadline", "started")

    def __init__(self, wid: int, proc: Any, conn: Any) -> None:
        self.id = wid
        self.proc = proc
        self.conn = conn
        self.tasks_done = 0
        self.current: Optional[_Task] = None
        self.deadline = float("inf")
        self.started = 0.0


class WorkerPool:
    """A pool of warm worker processes executing pickled task calls.

    Parameters
    ----------
    jobs:
        Worker-process count; defaults to
        :func:`repro.analysis.parallel_sweep.default_jobs` (``$REPRO_JOBS``
        or the CPU count).  Workers spawn lazily — an idle pool holds no
        processes until the first task arrives.
    max_tasks_per_worker:
        Retire a worker after this many tasks (``None`` disables recycling).
    warmup:
        Optional callable run once inside each fresh worker (e.g. to
        pre-import a driver module) before it serves tasks.

    Usage::

        with WorkerPool(jobs=4) as pool:
            pool.submit("a", fn, {"n": 4})
            pool.submit("b", fn, {"n": 8}, timeout=10.0)
            results = {}
            while len(results) < 2:
                for event in pool.events():
                    results[event.key] = event

    ``fn`` and each kwarg value must be picklable (module-level functions,
    :func:`functools.partial` of them, plain data) — the same contract
    process-per-point execution always had.
    """

    #: Local pipe workers need no servicing while idle; the multiplexer
    #: skips events() on an empty pool.  The TCP pool overrides this.
    needs_poll = False

    def __init__(
        self,
        jobs: Optional[int] = None,
        max_tasks_per_worker: Optional[int] = DEFAULT_MAX_TASKS_PER_WORKER,
        warmup: Optional[Callable[[], None]] = None,
    ) -> None:
        from repro.analysis.parallel_sweep import default_jobs

        if jobs is not None and int(jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_tasks_per_worker is not None and int(max_tasks_per_worker) < 1:
            raise ValueError(
                f"max_tasks_per_worker must be >= 1 or None, got {max_tasks_per_worker}"
            )
        self.jobs = default_jobs() if jobs is None else int(jobs)
        self.max_tasks_per_worker = (
            None if max_tasks_per_worker is None else int(max_tasks_per_worker)
        )
        self._warmup = warmup
        self._queue: List[_Task] = []
        self._workers: List[_Worker] = []
        self._next_worker_id = 1
        self._closed = False
        #: Events produced outside the events() call (send-side crashes).
        self._pending_events: List[PoolEvent] = []
        self.stats: Dict[str, int] = {
            "tasks_completed": 0,
            "workers_spawned": 0,
            "recycled": 0,
            "crashes": 0,
            "timeouts": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def _spawn(self) -> _Worker:
        from multiprocessing import get_context

        ctx = get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main, args=(child_conn, self._warmup), daemon=True
        )
        proc.start()
        child_conn.close()
        worker = _Worker(self._next_worker_id, proc, parent_conn)
        self._next_worker_id += 1
        self._workers.append(worker)
        self.stats["workers_spawned"] += 1
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.counter(
                "repro_pool_workers_spawned_total", "worker processes started"
            ).inc()
        return worker

    def _reap(self, worker: _Worker, kill: bool = False) -> None:
        """Remove ``worker`` from the pool and make sure its process is gone."""
        if worker in self._workers:
            self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        if kill and worker.proc.is_alive():
            worker.proc.kill()
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():  # pragma: no cover - stuck even after kill
            worker.proc.kill()
            worker.proc.join()

    def _retire(self, worker: _Worker) -> None:
        """Gracefully stop an idle worker (recycling / shutdown)."""
        try:
            worker.conn.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        self._reap(worker)

    def shutdown(self) -> None:
        """Stop every worker (killing any mid-task) and drop queued tasks.

        Idempotent; the pool is unusable afterwards.
        """
        self._closed = True
        self._queue.clear()
        for worker in list(self._workers):
            if worker.current is not None:
                self._reap(worker, kill=True)
            else:
                self._retire(worker)

    # -- submission and dispatch -------------------------------------------

    @property
    def active_count(self) -> int:
        """Tasks currently executing in workers."""
        return sum(1 for w in self._workers if w.current is not None)

    @property
    def queued_count(self) -> int:
        """Tasks waiting for a free worker."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Submitted-but-unreported tasks (queued + active)."""
        return self.active_count + self.queued_count

    def fleet(self) -> List[Dict[str, Any]]:
        """Worker rows for the ``/v1/workers`` fleet view.

        Local pipe workers in the same shape the TCP pool reports
        (``transport: "pipe"``; no address, generations, or heartbeat —
        a pipe to a child process is never partitioned).
        """
        return [
            {
                "id": w.id,
                "name": f"pipe-{w.id}",
                "state": "live",
                "generation": 1,
                "addr": None,
                "pid": w.proc.pid,
                "host": None,
                "tasks_done": w.tasks_done,
                "current": w.current.key if w.current is not None else None,
                "registered": None,
                "heartbeat_latency_s": None,
                "transport": "pipe",
            }
            for w in self._workers
        ]

    def submit(
        self,
        key: str,
        fn: Callable[..., Any],
        kwargs: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
        trace: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Enqueue ``fn(**kwargs)`` under ``key``; FIFO within the pool.

        The completion arrives as a :class:`PoolEvent` from :meth:`events`.
        Keys are the caller's correlation handle and should be unique among
        in-flight tasks.  ``trace`` is an optional span-context dict
        (``{"trace_id", "span_id"}``) carried to the worker inside the
        task message, so worker-side execution spans parent under the
        dispatching task span.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._queue.append(_Task(key, fn, kwargs or {}, timeout, trace))
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.counter(
                "repro_pool_tasks_dispatched_total", "tasks submitted to the pool"
            ).inc()
        self._dispatch()
        if _metrics.REGISTRY.enabled:
            self._update_metric_gauges()

    def cancel_pending(self) -> List[str]:
        """Drop every queued (not yet running) task; returns their keys."""
        keys = [task.key for task in self._queue]
        self._queue.clear()
        return keys

    def _dispatch(self) -> None:
        """Hand queued tasks to idle workers, spawning up to ``jobs``."""
        for worker in self._workers:
            if not self._queue:
                return
            if worker.current is None:
                self._assign(worker, self._queue.pop(0))
        while self._queue and len(self._workers) < self.jobs:
            self._assign(self._spawn(), self._queue.pop(0))

    def _assign(self, worker: _Worker, task: _Task) -> None:
        now = time.monotonic()
        worker.current = task
        worker.started = now
        worker.deadline = now + task.timeout if task.timeout is not None else float("inf")
        try:
            if task.trace is not None:
                worker.conn.send(
                    ("task", task.key, task.fn, task.kwargs, task.trace)
                )
            else:
                worker.conn.send(("task", task.key, task.fn, task.kwargs))
        except (OSError, BrokenPipeError):
            # The worker died between tasks; treat as a crash of this task's
            # attempt so the caller's retry policy sees it.
            self._reap(worker, kill=True)
            self.stats["crashes"] += 1
            self._pending_events.append(
                PoolEvent(task.key, "crash",
                          f"worker crashed (exit code {worker.proc.exitcode})",
                          worker.id, 0.0)
            )

    # -- metrics -----------------------------------------------------------

    def _update_metric_gauges(self) -> None:
        """Refresh the pool's queue/occupancy gauges (registry enabled only)."""
        registry = _metrics.REGISTRY
        registry.gauge(
            "repro_pool_queue_depth", "tasks waiting for a free worker"
        ).set(len(self._queue))
        registry.gauge(
            "repro_pool_active_tasks", "tasks currently executing in workers"
        ).set(self.active_count)

    def _account_events(self, events: List[PoolEvent]) -> None:
        """Account a batch of completions into the registry (enabled only)."""
        registry = _metrics.REGISTRY
        completed = registry.counter(
            "repro_pool_tasks_completed_total", "task completions by status"
        )
        latency = registry.histogram(
            "repro_pool_task_seconds", "per-task wall time inside workers"
        )
        for event in events:
            completed.inc(status=event.status)
            latency.observe(event.wall_time)
        recycled = registry.counter(
            "repro_pool_workers_recycled_total", "workers retired by recycling"
        )
        delta = self.stats["recycled"] - recycled.value()
        if delta > 0:
            recycled.inc(delta)
        self._update_metric_gauges()

    # -- completion --------------------------------------------------------

    def events(self, wait: float = 0.5) -> List[PoolEvent]:
        """Dispatch queued work, then collect completions for up to ``wait`` s.

        Returns as soon as at least one event is available (possibly
        sooner than ``wait``); returns ``[]`` on a quiet interval or when
        nothing is in flight.  Watchdog kills and crash detection happen
        here, so callers with in-flight tasks should poll regularly.
        """
        from multiprocessing.connection import wait as conn_wait

        self._dispatch()
        events: List[PoolEvent] = list(self._pending_events)
        self._pending_events.clear()

        busy = [w for w in self._workers if w.current is not None]
        if not busy:
            if _metrics.REGISTRY.enabled:
                self._account_events(events)
            return events
        if not events:
            nearest = min(w.deadline for w in busy)
            wait_for = max(0.001, min(wait, nearest - time.monotonic()))
            ready = set(conn_wait([w.conn for w in busy], wait_for))
        else:
            ready = set(conn_wait([w.conn for w in busy], 0))

        now = time.monotonic()
        for worker in busy:
            task = worker.current
            if task is None:  # pragma: no cover - defensive
                continue
            if worker.conn in ready or (not worker.proc.is_alive() and worker.conn.poll()):
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError):
                    events.append(self._crash(worker, task, now))
                    continue
                status, key, payload, wall = reply[:4]
                if len(reply) > 4 and _tracing.TRACER.enabled:
                    _tracing.TRACER.ingest(reply[4])
                worker.current = None
                worker.tasks_done += 1
                self.stats["tasks_completed"] += 1
                events.append(PoolEvent(key, status, payload, worker.id, wall))
                if (
                    self.max_tasks_per_worker is not None
                    and worker.tasks_done >= self.max_tasks_per_worker
                ):
                    self.stats["recycled"] += 1
                    self._retire(worker)
            elif not worker.proc.is_alive():
                events.append(self._crash(worker, task, now))
            elif now >= worker.deadline:
                self.stats["timeouts"] += 1
                self._reap(worker, kill=True)
                events.append(
                    PoolEvent(task.key, "timeout",
                              f"timed out after {task.timeout}s",
                              worker.id, now - worker.started)
                )
        self._dispatch()  # freed slots pick up queued work immediately
        if _metrics.REGISTRY.enabled:
            self._account_events(events)
        return events

    def _crash(self, worker: _Worker, task: _Task, now: float) -> PoolEvent:
        self.stats["crashes"] += 1
        self._reap(worker, kill=True)
        return PoolEvent(
            task.key, "crash",
            f"worker crashed (exit code {worker.proc.exitcode})",
            worker.id, now - worker.started,
        )
