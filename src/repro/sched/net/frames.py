"""Length-prefixed pickle framing for the TCP worker protocol.

One frame = a 4-byte big-endian payload length followed by a pickled
tuple whose first element names the frame type.  The task/result frames
carry exactly the message schema the duplex-pipe pool uses
(:mod:`repro.sched.pool`), so a task neither knows nor cares whether it
crossed a pipe or a socket:

==========  =========  =================================================
frame       direction  payload
==========  =========  =================================================
``hello``   w -> s     ``("hello", name, meta)`` — register; ``meta``
                       carries ``pid``/``host`` for the fleet view
``welcome`` s -> w     ``("welcome", worker_id, generation)``
``evict``   s -> w     ``("evict", reason)`` — a newer registration with
                       the same name superseded this connection
``task``    s -> w     ``("task", key, fn, kwargs[, trace])`` — the pipe
                       schema; ``trace`` (optional 5th field) is the
                       dispatching span's ``{"trace_id", "span_id"}``
                       context, present only on traced runs
``ok``      w -> s     ``("ok", key, value, wall[, spans])`` — the pipe
                       schema; ``spans`` (optional 5th field) carries
                       the worker's finished ``repro.trace/1`` span
                       dicts back for the scheduler-side sink
``error``   w -> s     ``("error", key, "Type: message", wall[, spans])``
``ping``    s -> w     ``("ping", seq, t_mono)`` — scheduler heartbeat
``pong``    w -> s     ``("pong", seq, t_mono)`` — echo of the ping
``stop``    s -> w     ``("stop",)`` — drain and exit
==========  =========  =================================================

Framing errors are :class:`FrameError`; a peer that closed the socket
(cleanly at a frame boundary or torn mid-frame) raises
:class:`ConnectionClosed`, which the pool and worker map onto their
lost-connection paths.  ``MAX_FRAME_BYTES`` bounds what one frame may
carry so a corrupt length prefix cannot make a reader allocate
gigabytes.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

__all__ = [
    "FrameError",
    "ConnectionClosed",
    "MAX_FRAME_BYTES",
    "FRAME_TYPES",
    "send_frame",
    "recv_frame",
    "recv_frame_bytes",
    "frame_type",
    "encode_frame",
    "decode_frame",
]

#: Upper bound on a single frame's pickled payload.  Task outcomes are
#: JSON-sized dicts; anything bigger is a protocol violation, not data.
MAX_FRAME_BYTES = 64 << 20

#: Every frame type either side may legitimately send.
FRAME_TYPES = (
    "hello", "welcome", "evict", "task", "ok", "error", "ping", "pong", "stop",
)

_HEADER = struct.Struct(">I")


class FrameError(RuntimeError):
    """A malformed frame: bad length prefix, unpicklable payload, bad shape."""


class ConnectionClosed(FrameError):
    """The peer closed the connection (at or inside a frame boundary)."""


def encode_frame(frame: Tuple[Any, ...]) -> bytes:
    """Serialize ``frame`` to its wire bytes (header + pickled payload)."""
    payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Tuple[Any, ...]:
    """Unpickle one frame payload and validate its shape."""
    try:
        frame = pickle.loads(payload)
    except Exception as exc:  # pickle raises a small zoo of types
        raise FrameError(f"unpicklable frame payload: {exc}") from exc
    frame_type(frame)  # shape validation
    return frame


def send_frame(sock: socket.socket, frame: Tuple[Any, ...]) -> None:
    """Write one frame to ``sock`` (``sendall``: whole frame or exception)."""
    sock.sendall(encode_frame(frame))


def enable_nodelay(sock: socket.socket) -> None:
    """Disable Nagle on ``sock``; every fabric connection calls this.

    The protocol is small request/response frames — with Nagle on, each
    task/result pair stalls up to ~40ms against the peer's delayed ACK,
    which dominates short tasks and flattens the host-scaling curve in
    ``benchmarks/bench_sched.py``.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except (OSError, AttributeError):
        pass  # non-TCP socket (tests use socketpairs) or exotic platform


def _recv_exact(sock: socket.socket, n: int, *, boundary: bool) -> bytes:
    """Read exactly ``n`` bytes; raise :class:`ConnectionClosed` on EOF.

    ``boundary`` marks whether EOF *before any byte* is a clean close
    (peer finished between frames) — it still raises, but with a message
    distinguishing it from a frame torn mid-read.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if boundary and remaining == n:
                raise ConnectionClosed("peer closed the connection")
            raise ConnectionClosed(
                f"connection torn mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame_bytes(sock: socket.socket) -> bytes:
    """Read one frame's raw payload bytes (the proxy's forwarding unit)."""
    header = _recv_exact(sock, _HEADER.size, boundary=True)
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"bad frame length {length}")
    return _recv_exact(sock, length, boundary=False)


def recv_frame(sock: socket.socket) -> Tuple[Any, ...]:
    """Read and decode one frame from ``sock``."""
    return decode_frame(recv_frame_bytes(sock))


def frame_type(frame: Any) -> str:
    """The validated type tag of a decoded frame."""
    if (
        not isinstance(frame, tuple)
        or not frame
        or not isinstance(frame[0], str)
    ):
        raise FrameError(f"frame must be a non-empty tuple, got {type(frame).__name__}")
    if frame[0] not in FRAME_TYPES:
        raise FrameError(f"unknown frame type {frame[0]!r}")
    return frame[0]
