"""The chaos proxy: a TCP shim that injects frame-level network faults.

``ChaosProxy`` listens on its own port; workers dial *it* instead of the
scheduler, and it dials the real :class:`~repro.sched.net.pool.\
RemoteWorkerPool` upstream.  Each worker connection becomes a *link*
with two pump threads (``c2s`` worker->scheduler, ``s2c`` back).  A pump
reads one whole frame at a time (:func:`~repro.sched.net.frames.\
recv_frame_bytes` — the length-prefixed payload, forwarded verbatim so
the proxy can never corrupt what it forwards), peeks the frame type,
asks the :class:`~repro.faults.net.NetFaultPlan` for a verdict, and
acts on it: forward, drop, hold-then-forward (``delay``), forward twice
(``duplicate``), close both sockets (``reconnect``), or drop everything
while a ``partition`` window is open.

Every frame's verdict is one JSONL line in the fault log — the
frame-level record the chaos harness and the CI ``chaos-net`` job
archive as an artifact::

    {"t": <epoch>, "link": 3, "dir": "c2s", "frame": "ok",
     "seq": 117, "action": "blackhole", "fault": "partition", "case": "..."}

The proxy is fault-transparent when the plan is empty, and EOF
propagates: when either side of a link closes, both sockets close, so a
scheduler that writes a worker off genuinely disconnects it (the worker
then redials through the proxy — re-registration during a partition
window fails until the window heals, because the ``hello`` frames are
blackholed too).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from typing import IO, Any, Dict, List, Optional, Tuple

from repro.faults.net import NetFaultPlan
from repro.sched.net.frames import (
    ConnectionClosed,
    FrameError,
    _HEADER,
    decode_frame,
    enable_nodelay,
    recv_frame_bytes,
)
from repro.util.clock import wallclock

__all__ = ["ChaosProxy"]


class _Link:
    """One proxied worker connection: downstream (worker) + upstream (pool)."""

    __slots__ = ("id", "down", "up", "closed")

    def __init__(self, link_id: int, down: socket.socket, up: socket.socket) -> None:
        self.id = link_id
        self.down = down
        self.up = up
        self.closed = False

    def close(self) -> None:
        self.closed = True
        for sock in (self.down, self.up):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """A frame-forwarding TCP proxy with scheduled fault injection.

    Parameters
    ----------
    upstream:
        The real scheduler's ``(host, port)`` — usually
        ``pool.address``.
    plan:
        The :class:`~repro.faults.net.NetFaultPlan` consulted per frame
        (default: an empty plan — fully transparent).
    log_path:
        Append-mode JSONL file receiving one line per frame verdict.
    log_label:
        A ``"case"`` tag stamped on every log line (the harness sets it
        to the chaos case name so one log file serves a whole suite).
    host, port:
        Where the proxy listens (``port=0``: ephemeral; read
        :attr:`address` back).
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        plan: Optional[NetFaultPlan] = None,
        log_path: Optional[str] = None,
        log_label: str = "",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = (upstream[0], int(upstream[1]))
        self.plan = plan if plan is not None else NetFaultPlan()
        self.log_label = log_label
        # Line-buffered: every fault verdict reaches the OS as soon as
        # its line is complete, so a SIGKILLed chaos run (the CI leg
        # kills the whole process tree) keeps its log tail instead of
        # losing whatever sat in a default-sized stdio buffer.
        self._log: Optional[IO[str]] = (
            open(log_path, "a", buffering=1) if log_path else None
        )
        self._log_lock = threading.Lock()
        self._log_seq = 0
        self._links: List[_Link] = []
        self._links_lock = threading.Lock()
        self._next_link = 1
        self._closed = False
        self._listener = socket.create_server((host, port), backlog=16)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="chaos-proxy-accept"
        )
        self._accept_thread.start()

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` workers should dial."""
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._links_lock:
            links = list(self._links)
        for link in links:
            link.close()
        self._accept_thread.join(timeout=2.0)
        if self._log is not None:
            with self._log_lock:
                self._log.close()
                self._log = None

    def partition(self, duration_s: float) -> None:
        """Open a partition window on the plan right now (CLI/CI hook)."""
        self.plan.partition(duration_s)

    @property
    def log_lines(self) -> int:
        """Frame-verdict lines written so far (the harness's tail check)."""
        with self._log_lock:
            return self._log_seq

    @property
    def live_links(self) -> int:
        with self._links_lock:
            return sum(1 for link in self._links if not link.closed)

    # -- internals ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                down, _ = self._listener.accept()
            except OSError:
                return
            try:
                up = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                down.close()
                continue
            enable_nodelay(down)
            enable_nodelay(up)
            with self._links_lock:
                link = _Link(self._next_link, down, up)
                self._next_link += 1
                self._links.append(link)
            for direction, src, dst in (
                ("c2s", down, up), ("s2c", up, down)
            ):
                threading.Thread(
                    target=self._pump, args=(link, direction, src, dst),
                    daemon=True, name=f"chaos-proxy-{link.id}-{direction}",
                ).start()

    def _pump(
        self,
        link: _Link,
        direction: str,
        src: socket.socket,
        dst: socket.socket,
    ) -> None:
        try:
            while not link.closed:
                payload = recv_frame_bytes(src)
                try:
                    frame_kind = decode_frame(payload)[0]
                except FrameError:
                    frame_kind = "?"  # forward anyway; the peer will complain
                action, fault = self.plan.decide(direction, frame_kind)
                self._log_line(link, direction, frame_kind, action, fault)
                wire = _HEADER.pack(len(payload)) + payload
                if action in ("drop", "blackhole"):
                    continue
                if action == "reconnect":
                    link.close()
                    return
                if action == "delay":
                    time.sleep(fault.delay_s)
                dst.sendall(wire)
                if action == "duplicate":
                    dst.sendall(wire)
        except (ConnectionClosed, FrameError, OSError):
            pass
        finally:
            link.close()

    def _log_line(
        self,
        link: _Link,
        direction: str,
        frame_kind: str,
        action: str,
        fault: Optional[Any],
    ) -> None:
        if self._log is None:
            return
        row: Dict[str, Any] = {
            "t": round(wallclock(), 6),
            "link": link.id,
            "dir": direction,
            "frame": frame_kind,
            "action": action,
        }
        if fault is not None:
            row["fault"] = fault.kind
        elif action == "blackhole":
            row["fault"] = "partition"
        if self.log_label:
            row["case"] = self.log_label
        # One lock window covers sequence allocation AND the write:
        # splitting them (the old shape) let two pump threads allocate
        # seq N and N+1 and then write in the opposite order, so "seq"
        # no longer matched file order.  fsync per line pushes the frame
        # verdict to disk before the fault it describes can kill
        # anything — the harness asserts the tail survives a SIGKILL.
        with self._log_lock:
            if self._log is not None:
                self._log_seq += 1
                row["seq"] = self._log_seq
                self._log.write(json.dumps(row) + "\n")
                self._log.flush()
                try:
                    os.fsync(self._log.fileno())
                except (OSError, ValueError):
                    pass  # closed mid-write or a non-file sink
