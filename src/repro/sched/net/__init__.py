"""Multi-host worker fabric: the warm pool over TCP.

:class:`~repro.sched.net.pool.RemoteWorkerPool` speaks a length-prefixed
pickle frame protocol (:mod:`repro.sched.net.frames`) to remote worker
processes (:mod:`repro.sched.net.worker`) that register with the
scheduler and heartbeat for liveness (:mod:`repro.sched.net.registry`).
The pool exposes exactly the :class:`~repro.sched.pool.WorkerPool`
surface — ``submit`` / ``events`` / ``in_flight`` / ``stats`` — so
:func:`~repro.sched.campaign.run_campaign` and
:class:`~repro.sched.tenancy.FairShareMultiplexer` drive it unchanged.

Failure semantics (docs/DISTRIBUTED.md): a lost or partitioned worker is
handled exactly like a crashed one.  Its in-flight task requeues with
bounded exponential backoff; only when the delivery budget is exhausted
does the caller see a ``"crash"`` event and its own retry policy take
over.  The content-addressed :class:`~repro.sched.store.ResultStore` is
the shared cross-host cache, so any host's completed point is served
everywhere.  :mod:`repro.sched.net.proxy` is the chaos shim that injects
:mod:`repro.faults.net` frame-level network faults between the two.
"""

from repro.sched.net.frames import (
    ConnectionClosed,
    FrameError,
    MAX_FRAME_BYTES,
    frame_type,
    recv_frame,
    send_frame,
)
from repro.sched.net.pool import RemoteWorkerPool
from repro.sched.net.registry import WorkerInfo, WorkerRegistry
from repro.sched.net.worker import run_worker, spawn_local_workers

__all__ = [
    "ConnectionClosed",
    "FrameError",
    "MAX_FRAME_BYTES",
    "frame_type",
    "recv_frame",
    "send_frame",
    "RemoteWorkerPool",
    "WorkerInfo",
    "WorkerRegistry",
    "run_worker",
    "spawn_local_workers",
]
