"""The scheduler-side worker registry: names, liveness, split-brain policy.

Remote workers introduce themselves by name (``hello`` frame); the
registry is the single source of truth for what the scheduler believes
about the fleet.  Per worker it tracks the connection, a monotonic
heartbeat deadline, the current task assignment, and a lifecycle state:

=============  ========================================================
state          meaning
=============  ========================================================
``live``       registered, heartbeating, eligible for tasks
``lost``       heartbeat deadline expired or the connection died; its
               in-flight task was requeued by the pool
``evicted``    a newer registration with the same name superseded it
               (split-brain: the *latest* registration wins, the stale
               connection is told ``evict`` and closed)
``stopped``    retired cleanly at shutdown
=============  ========================================================

Names are the worker's stable identity across reconnects: a worker that
reconnects after a partition re-registers under its old name and gets a
bumped ``generation`` — the fleet view shows one row per name with its
reconnect count rather than a new anonymous row per TCP connection.

Every deadline here is ``time.monotonic`` arithmetic; wall-clock jumps
cannot spuriously expire a healthy worker (docs/DISTRIBUTED.md, and the
same audit that keeps :mod:`repro.sched.pool` watchdogs monotonic).
Registration transitions feed the worker-fleet metrics
(``repro_net_workers_{registered,lost,reconnected}_total``) when the
process-wide registry is enabled.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.util.clock import wallclock

__all__ = ["WorkerInfo", "WorkerRegistry", "WORKER_STATES"]

#: Every state a registered worker can report, in lifecycle order.
WORKER_STATES = ("live", "lost", "evicted", "stopped")


class WorkerInfo:
    """One registered remote worker, as the scheduler sees it."""

    __slots__ = (
        "id", "name", "conn", "addr", "meta", "generation", "state",
        "registered_at", "registered_wall", "last_pong", "ping_seq",
        "ping_sent", "last_latency", "tasks_done", "current", "deadline",
        "started",
    )

    def __init__(
        self,
        wid: int,
        name: str,
        conn: Any,
        addr: Tuple[str, int],
        meta: Dict[str, Any],
        generation: int,
    ) -> None:
        now = time.monotonic()
        self.id = wid
        self.name = name
        self.conn = conn
        self.addr = addr
        self.meta = dict(meta)
        self.generation = generation
        self.state = "live"
        self.registered_at = now          # monotonic: deadline math
        self.registered_wall = wallclock()  # display only
        self.last_pong = now
        self.ping_seq = 0
        #: (seq, t_mono) of the outstanding ping, or None.
        self.ping_sent: Optional[Tuple[int, float]] = None
        self.last_latency: Optional[float] = None
        self.tasks_done = 0
        self.current: Optional[Any] = None  # the pool's _NetTask
        self.deadline = float("inf")        # current task's watchdog deadline
        self.started = 0.0

    @property
    def busy(self) -> bool:
        return self.current is not None

    def to_row(self) -> Dict[str, Any]:
        """The fleet-view row (``GET /v1/workers``, ``serve workers``)."""
        return {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "generation": self.generation,
            "addr": f"{self.addr[0]}:{self.addr[1]}",
            "pid": self.meta.get("pid"),
            "host": self.meta.get("host"),
            "tasks_done": self.tasks_done,
            "current": getattr(self.current, "key", None),
            "registered": self.registered_wall,
            "heartbeat_latency_s": self.last_latency,
            "transport": "tcp",
        }


class WorkerRegistry:
    """Name-keyed registration with latest-wins split-brain eviction."""

    def __init__(self) -> None:
        self._next_id = 1
        #: Every registration ever seen this process, by id (fleet history).
        self._workers: Dict[int, WorkerInfo] = {}
        #: name -> the live registration holding that name.
        self._live_by_name: Dict[str, WorkerInfo] = {}
        #: name -> registration count (generation of the next register()).
        self._generations: Dict[str, int] = {}

    # -- transitions ---------------------------------------------------------

    def register(
        self,
        name: str,
        conn: Any,
        addr: Tuple[str, int],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Tuple[WorkerInfo, Optional[WorkerInfo]]:
        """Admit a ``hello``; returns ``(worker, evicted)``.

        If ``name`` is already held by a live connection, that older
        registration is the split-brain loser: it is returned as
        ``evicted`` (state flipped here; the pool owns telling it and
        requeueing its task).  A name seen before — evicted or lost —
        re-registers with a bumped generation, which the metrics count
        as a reconnect.
        """
        evicted = self._live_by_name.get(name)
        if evicted is not None:
            evicted.state = "evicted"
            del self._live_by_name[evicted.name]
        generation = self._generations.get(name, 0) + 1
        self._generations[name] = generation
        worker = WorkerInfo(self._next_id, name, conn, addr, meta or {}, generation)
        self._next_id += 1
        self._workers[worker.id] = worker
        self._live_by_name[name] = worker
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.counter(
                "repro_net_workers_registered_total",
                "remote worker registrations (hello frames admitted)",
            ).inc()
            if generation > 1:
                _metrics.REGISTRY.counter(
                    "repro_net_workers_reconnected_total",
                    "re-registrations of a previously seen worker name",
                ).inc()
        return worker, evicted

    def drop(self, worker: WorkerInfo, state: str) -> None:
        """Move ``worker`` out of the live set into ``state``."""
        if state not in WORKER_STATES or state == "live":
            raise ValueError(f"cannot drop to state {state!r}")
        worker.state = state
        if self._live_by_name.get(worker.name) is worker:
            del self._live_by_name[worker.name]
        if state == "lost" and _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.counter(
                "repro_net_workers_lost_total",
                "workers declared lost (heartbeat expiry or dead connection)",
            ).inc()

    # -- heartbeat bookkeeping ----------------------------------------------

    def record_pong(self, worker: WorkerInfo, seq: int, t_sent: float) -> None:
        """Fold a ``pong`` echo in; observes the round-trip latency."""
        now = time.monotonic()
        worker.last_pong = now
        if worker.ping_sent is not None and worker.ping_sent[0] == seq:
            worker.ping_sent = None
        worker.last_latency = max(0.0, now - t_sent)
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.histogram(
                "repro_net_heartbeat_seconds",
                "ping/pong round-trip latency per heartbeat",
            ).observe(worker.last_latency)

    def expired(self, timeout: float, now: Optional[float] = None) -> List[WorkerInfo]:
        """Live workers whose last pong is older than ``timeout`` seconds."""
        now = time.monotonic() if now is None else now
        return [w for w in self.live() if now - w.last_pong > timeout]

    # -- queries -------------------------------------------------------------

    def live(self) -> List[WorkerInfo]:
        return list(self._live_by_name.values())

    def by_name(self, name: str) -> Optional[WorkerInfo]:
        return self._live_by_name.get(name)

    def all(self) -> List[WorkerInfo]:
        """Every registration this process has seen, oldest first."""
        return [self._workers[i] for i in sorted(self._workers)]

    def rows(self) -> List[Dict[str, Any]]:
        """Fleet-view rows: one per live worker, plus terminal history."""
        return [w.to_row() for w in self.all()]

    def update_gauge(self) -> None:
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.gauge(
                "repro_net_workers_live", "currently registered live workers"
            ).set(len(self._live_by_name))
