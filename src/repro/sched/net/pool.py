"""``RemoteWorkerPool``: the warm pool over TCP, drop-in for ``WorkerPool``.

The pool owns a listening socket.  Remote workers
(:mod:`repro.sched.net.worker`) connect, register by name, and then
serve exactly the pipe pool's task protocol over length-prefixed pickle
frames (:mod:`repro.sched.net.frames`).  The public surface is the
:class:`~repro.sched.pool.WorkerPool` duck type — ``jobs``, ``submit``,
``events``, ``in_flight``, ``active_count``, ``queued_count``,
``cancel_pending``, ``shutdown``, ``stats`` — so
:func:`~repro.sched.campaign.run_campaign` and
:class:`~repro.sched.tenancy.FairShareMultiplexer` drive it unchanged.

Like the pipe pool, it is **polled, not threaded**: all socket work
(accepting registrations, heartbeats, reads, dispatch, watchdogs)
happens inside :meth:`events` calls on the caller's scheduler loop.
Drivers that poll a pipe pool already call ``events`` regularly; the
``needs_poll`` attribute tells the multiplexer to keep calling even
when nothing is in flight, so heartbeats and registrations progress on
an idle pool.

Failure semantics (docs/DISTRIBUTED.md's failure matrix):

* **Lost worker** (dead connection, or heartbeat silence beyond
  ``heartbeat_timeout``) — its in-flight task is *requeued by the pool*
  with exponential backoff, because a lost link says nothing about the
  task.  Each task carries a delivery budget (``max_deliveries``); when
  it is exhausted the caller finally sees a ``"crash"`` event and the
  caller's bounded-retry policy takes over — a partitioned worker
  degrades into exactly a crashed one.
* **Timeout** — the task watchdog (monotonic deadline, as in the pipe
  pool) reports ``"timeout"`` and drops the connection; a hung task is
  a task property, so it is *not* requeued.  A late result from a
  worker that was written off is recognised as stale and dropped.
* **Split-brain registration** — a second ``hello`` with a live name
  evicts the older connection (latest wins); the evicted side's task
  requeues like a lost worker's.
* **Duplicate frames** (chaos ``duplicate``) — results are matched
  against the worker's current assignment; a second copy is stale and
  dropped.  Tasks are idempotent by the store's content-addressed
  contract, so at-least-once delivery is safe.
"""

from __future__ import annotations

import selectors
import socket
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.sched.net.frames import (
    ConnectionClosed,
    FrameError,
    enable_nodelay,
    frame_type,
    recv_frame,
    send_frame,
)
from repro.sched.net.registry import WorkerInfo, WorkerRegistry
from repro.sched.pool import PoolEvent

__all__ = [
    "RemoteWorkerPool",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_MAX_DELIVERIES",
]

#: Seconds between heartbeat pings to each live worker.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Seconds of pong silence after which a worker is declared lost.
DEFAULT_HEARTBEAT_TIMEOUT = 2.5

#: Times one task may be handed to a worker before a lost delivery
#: surfaces to the caller as a ``"crash"`` event.
DEFAULT_MAX_DELIVERIES = 3


class _NetTask:
    __slots__ = (
        "key", "fn", "kwargs", "timeout", "deliveries", "not_before", "trace",
    )

    def __init__(self, key: str, fn: Callable[..., Any],
                 kwargs: Mapping[str, Any], timeout: Optional[float],
                 trace: Optional[Mapping[str, str]] = None) -> None:
        self.key = key
        self.fn = fn
        self.kwargs = dict(kwargs)
        self.timeout = timeout
        self.deliveries = 0
        #: Monotonic time before which a requeued task must not redispatch.
        self.not_before = 0.0
        #: Span context carried on every delivery of this task — requeues
        #: reuse the same object, so a task that survives a lost worker
        #: keeps its trace_id across redeliveries.
        self.trace = None if trace is None else dict(trace)


class RemoteWorkerPool:
    """A pool of remote TCP workers behind the ``WorkerPool`` surface.

    Parameters
    ----------
    host, port:
        Bind address for the worker listener (``port=0``: ephemeral;
        read the real one back from :attr:`address`).
    jobs:
        Expected worker count — the backpressure denominator callers
        use (``max_in_flight = 2 * pool.jobs``), *not* a spawn count:
        workers are external processes that register themselves.
    heartbeat_interval / heartbeat_timeout:
        Ping cadence and the pong-silence bound past which a worker is
        lost.  Both are monotonic-clock arithmetic.
    max_deliveries:
        Per-task delivery budget before a lost worker's task surfaces
        as a ``"crash"`` event to the caller's retry policy.
    backoff_base / backoff_max:
        Requeue backoff: delivery ``k`` redispatches no sooner than
        ``min(backoff_base * 2**(k-1), backoff_max)`` seconds later.
    """

    #: Tells the multiplexer to call :meth:`events` even while idle, so
    #: registrations and heartbeats progress without in-flight tasks.
    needs_poll = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 4,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_deliveries: int = DEFAULT_MAX_DELIVERIES,
        backoff_base: float = 0.05,
        backoff_max: float = 1.0,
    ) -> None:
        if int(jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0:
            raise ValueError("heartbeat interval and timeout must be positive")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                f"heartbeat_timeout ({heartbeat_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval})"
            )
        if int(max_deliveries) < 1:
            raise ValueError(f"max_deliveries must be >= 1, got {max_deliveries}")
        self.jobs = int(jobs)
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_deliveries = int(max_deliveries)
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)

        self.registry = WorkerRegistry()
        self._queue: List[_NetTask] = []
        self._pending_events: List[PoolEvent] = []
        #: Keys written off by the watchdog; a late result for one is stale.
        self._written_off: Dict[str, float] = {}
        self._closed = False
        self.stats: Dict[str, int] = {
            "tasks_completed": 0,
            "workers_spawned": 0,   # registrations, for WorkerPool parity
            "recycled": 0,          # remote workers are never recycled here
            "crashes": 0,
            "timeouts": 0,
            "workers_lost": 0,
            "workers_reconnected": 0,
            "requeues": 0,
            "stale_results": 0,
        }

        self._sel = selectors.DefaultSelector()
        self._listener = socket.create_server((host, port), backlog=16)
        self._listener.setblocking(False)
        self._sel.register(self._listener, selectors.EVENT_READ, "listener")

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "RemoteWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    @property
    def address(self) -> Tuple[str, int]:
        """The listener's ``(host, port)`` — what workers connect to."""
        return self._listener.getsockname()[:2]

    def shutdown(self) -> None:
        """Stop every worker, drop queued tasks, close the listener."""
        if self._closed:
            return
        self._closed = True
        self._queue.clear()
        for worker in self.registry.live():
            self._send_safe(worker, ("stop",))
            self._close_worker(worker, "stopped")
        try:
            self._sel.unregister(self._listener)
        except (KeyError, ValueError):
            pass
        self._listener.close()
        self._sel.close()

    # -- WorkerPool surface ------------------------------------------------

    @property
    def active_count(self) -> int:
        return sum(1 for w in self.registry.live() if w.busy)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        return self.active_count + self.queued_count

    def submit(
        self,
        key: str,
        fn: Callable[..., Any],
        kwargs: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
        trace: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Enqueue ``fn(**kwargs)`` under ``key``; FIFO within the pool.

        ``trace`` (a ``{"trace_id", "span_id"}`` dict) rides inside every
        delivery's task frame — including redeliveries after a lost
        worker — so remote execution spans parent under the same task
        span across requeues and hosts.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self._queue.append(_NetTask(key, fn, kwargs or {}, timeout, trace))
        if _metrics.REGISTRY.enabled:
            _metrics.REGISTRY.counter(
                "repro_pool_tasks_dispatched_total", "tasks submitted to the pool"
            ).inc()
        self._dispatch()

    def cancel_pending(self) -> List[str]:
        """Drop every queued (not yet dispatched) task; returns their keys."""
        keys = [task.key for task in self._queue]
        self._queue.clear()
        return keys

    def events(self, wait: float = 0.5) -> List[PoolEvent]:
        """Service the fabric, then collect completions for up to ``wait`` s.

        One call accepts pending registrations, reads worker frames,
        sends due heartbeats, expires pong and task deadlines, requeues
        or fails lost deliveries, and dispatches eligible queued tasks.
        Returns as soon as at least one event is available; ``[]`` on a
        quiet interval.
        """
        deadline = time.monotonic() + max(0.0, wait)
        events: List[PoolEvent] = []
        while True:
            self._drain_pending(events)
            now = time.monotonic()
            self._check_timers(now, events)
            self._dispatch()
            if events or self._closed:
                break
            remaining = deadline - now
            if remaining <= 0:
                break
            timeout = max(0.001, min(remaining, self._next_timer(now)))
            try:
                ready = self._sel.select(timeout)
            except OSError:  # selector closed under us (shutdown race)
                break
            for key, _ in ready:
                if key.data == "listener":
                    self._accept()
                else:
                    self._read_worker(key.data, events)
            if events:
                # One more service pass so freed workers pick up queued
                # tasks before control returns to the caller.
                self._check_timers(time.monotonic(), events)
                self._dispatch()
                break
        if _metrics.REGISTRY.enabled:
            self._account_events(events)
        return events

    def fleet(self) -> List[Dict[str, Any]]:
        """Fleet-view rows for ``/v1/workers`` (live + terminal history)."""
        return self.registry.rows()

    # -- internals ---------------------------------------------------------

    def _drain_pending(self, events: List[PoolEvent]) -> None:
        if self._pending_events:
            events.extend(self._pending_events)
            self._pending_events.clear()

    def _next_timer(self, now: float) -> float:
        """Seconds until the nearest heartbeat/watchdog/backoff timer."""
        horizon = self.heartbeat_interval
        for worker in self.registry.live():
            horizon = min(
                horizon,
                worker.last_pong + self.heartbeat_timeout - now,
                worker.deadline - now,
            )
        for task in self._queue:
            if task.not_before > now:
                horizon = min(horizon, task.not_before - now)
        return max(0.001, horizon)

    def _accept(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            # Blocking frame I/O with a bounded patience: a peer that
            # stalls mid-frame longer than the heartbeat timeout is dead.
            conn.settimeout(self.heartbeat_timeout)
            enable_nodelay(conn)
            try:
                hello = recv_frame(conn)
                if frame_type(hello) != "hello":
                    raise FrameError(f"expected hello, got {hello[0]!r}")
                name = str(hello[1])
                meta = dict(hello[2]) if len(hello) > 2 and hello[2] else {}
            except (FrameError, OSError, socket.timeout, IndexError):
                conn.close()
                continue
            worker, evicted = self.registry.register(name, conn, addr, meta)
            if evicted is not None:
                self._send_safe(evicted, ("evict", f"superseded by {worker.id}"))
                self._unhook(evicted)
                self._requeue_or_crash(
                    evicted, f"worker {name!r} superseded (split-brain eviction)"
                )
            self.stats["workers_spawned"] += 1
            if worker.generation > 1:
                self.stats["workers_reconnected"] += 1
            try:
                send_frame(conn, ("welcome", worker.id, worker.generation))
            except OSError:
                self._lose(worker, "died during registration")
                continue
            self._sel.register(conn, selectors.EVENT_READ, worker)
            self.registry.update_gauge()

    def _read_worker(self, worker: WorkerInfo, events: List[PoolEvent]) -> None:
        try:
            frame = recv_frame(worker.conn)
        except (ConnectionClosed, FrameError, OSError, socket.timeout) as exc:
            self._lose(worker, f"connection lost ({exc})")
            return
        kind = frame[0]
        if kind in ("ok", "error"):
            key, payload, wall = frame[1], frame[2], frame[3]
            if len(frame) > 4 and _tracing.TRACER.enabled:
                # Worker-side exec spans ride home on the result frame.
                _tracing.TRACER.ingest(frame[4])
            task = worker.current
            if task is None or task.key != key:
                # A duplicate frame, or a result for a task the watchdog
                # already wrote off — stale either way.
                self.stats["stale_results"] += 1
                self._written_off.pop(key, None)
                return
            worker.current = None
            worker.deadline = float("inf")
            worker.tasks_done += 1
            self.stats["tasks_completed"] += 1
            events.append(PoolEvent(key, kind, payload, worker.id, wall))
        elif kind == "pong":
            self.registry.record_pong(worker, int(frame[1]), float(frame[2]))
        elif kind == "hello":
            self._lose(worker, "protocol error: duplicate hello")
        else:
            self._lose(worker, f"protocol error: unexpected {kind!r} frame")

    def _check_timers(self, now: float, events: List[PoolEvent]) -> None:
        for worker in self.registry.live():
            if worker.busy and now >= worker.deadline:
                # Watchdog: a hung task is a task property — report
                # "timeout", do NOT requeue, and write the key off so a
                # late result is recognised as stale.
                task = worker.current
                worker.current = None
                self.stats["timeouts"] += 1
                self._written_off[task.key] = now
                events.append(
                    PoolEvent(task.key, "timeout",
                              f"timed out after {task.timeout}s",
                              worker.id, now - worker.started)
                )
                self._lose(worker, "task watchdog expired", requeue=False)
                continue
            if now - worker.last_pong > self.heartbeat_timeout:
                self._lose(
                    worker,
                    f"heartbeat silence > {self.heartbeat_timeout}s "
                    "(lost or partitioned)",
                )
                continue
            if (
                worker.ping_sent is None
                and now - worker.last_pong >= self.heartbeat_interval
            ):
                worker.ping_seq += 1
                worker.ping_sent = (worker.ping_seq, now)
                if not self._send_safe(worker, ("ping", worker.ping_seq, now)):
                    self._lose(worker, "connection lost (ping send failed)")

    def _dispatch(self) -> None:
        if not self._queue:
            return
        now = time.monotonic()
        for worker in self.registry.live():
            if worker.busy:
                continue
            task = self._pop_eligible(now)
            if task is None:
                return
            task.deliveries += 1
            worker.current = task
            worker.started = now
            worker.deadline = (
                now + task.timeout if task.timeout is not None else float("inf")
            )
            if task.trace is not None:
                frame = ("task", task.key, task.fn, task.kwargs, task.trace)
            else:
                frame = ("task", task.key, task.fn, task.kwargs)
            try:
                send_frame(worker.conn, frame)
            except (OSError, FrameError) as exc:
                self._lose(worker, f"connection lost (task send failed: {exc})")

    def _pop_eligible(self, now: float) -> Optional[_NetTask]:
        """FIFO pop of the first queued task whose backoff has elapsed."""
        for i, task in enumerate(self._queue):
            if task.not_before <= now:
                return self._queue.pop(i)
        return None

    def _lose(self, worker: WorkerInfo, reason: str, requeue: bool = True) -> None:
        """A worker's connection is gone: drop it, salvage its task."""
        self._unhook(worker)
        self.registry.drop(worker, "lost")
        self.stats["workers_lost"] += 1
        self.registry.update_gauge()
        if requeue:
            self._requeue_or_crash(worker, reason)
        else:
            worker.current = None

    def _requeue_or_crash(self, worker: WorkerInfo, reason: str) -> None:
        """Requeue the worker's in-flight task, or fail it as a crash."""
        task = worker.current
        worker.current = None
        worker.deadline = float("inf")
        if task is None:
            return
        if task.deliveries < self.max_deliveries:
            backoff = min(
                self.backoff_base * (2 ** max(0, task.deliveries - 1)),
                self.backoff_max,
            )
            task.not_before = time.monotonic() + backoff
            self._queue.append(task)
            self.stats["requeues"] += 1
            if _metrics.REGISTRY.enabled:
                _metrics.REGISTRY.counter(
                    "repro_net_tasks_requeued_total",
                    "in-flight tasks requeued off lost/evicted workers",
                ).inc()
        else:
            self.stats["crashes"] += 1
            self._pending_events.append(
                PoolEvent(
                    task.key, "crash",
                    f"worker {worker.name!r} lost: {reason}; "
                    f"{task.deliveries} deliveries exhausted",
                    worker.id, 0.0,
                )
            )

    def _unhook(self, worker: WorkerInfo) -> None:
        try:
            self._sel.unregister(worker.conn)
        except (KeyError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    def _close_worker(self, worker: WorkerInfo, state: str) -> None:
        self._unhook(worker)
        self.registry.drop(worker, state)
        worker.current = None

    def _send_safe(self, worker: WorkerInfo, frame: Tuple[Any, ...]) -> bool:
        try:
            send_frame(worker.conn, frame)
            return True
        except (OSError, FrameError):
            return False

    # -- metrics -----------------------------------------------------------

    def _account_events(self, events: List[PoolEvent]) -> None:
        registry = _metrics.REGISTRY
        if events:
            completed = registry.counter(
                "repro_pool_tasks_completed_total", "task completions by status"
            )
            latency = registry.histogram(
                "repro_pool_task_seconds", "per-task wall time inside workers"
            )
            for event in events:
                completed.inc(status=event.status)
                latency.observe(event.wall_time)
        registry.gauge(
            "repro_pool_queue_depth", "tasks waiting for a free worker"
        ).set(len(self._queue))
        registry.gauge(
            "repro_pool_active_tasks", "tasks currently executing in workers"
        ).set(self.active_count)
