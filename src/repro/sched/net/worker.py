"""The remote worker process: connect, register, serve tasks, heartbeat.

``run_worker`` is the whole lifecycle: dial the scheduler, introduce
itself with a ``hello`` (name + pid/host meta), then serve ``task``
frames with the same ``fn(**kwargs)`` -> ``("ok"|"error", key, payload,
wall)`` contract the pipe workers honour.  Tasks execute on a side
thread so the serve loop keeps answering ``ping`` frames while a task
runs — a busy worker must still prove liveness, otherwise every long
task would read as a partition.  On traced runs
(:mod:`repro.obs.tracing`), the task frame's optional 5th field carries
the dispatching span's context; the runner opens an ``exec`` span under
it and ships the finished span back on the result frame, so one
``trace_id`` survives the hop — and any requeue — across hosts.

Connection loss triggers reconnect with bounded exponential backoff
under the *same name*: the scheduler's registry recognises the name and
bumps its generation, so the fleet view shows one worker that
reconnected rather than a parade of strangers.  Two exits are final:
``stop`` (clean shutdown, exit 0) and ``evict`` (a newer registration
took this worker's name, exit 3) — an evicted worker reconnecting would
just re-evict its successor and flap forever.

Duplicated ``task`` frames (chaos ``duplicate`` faults) are queued and
served in order; the scheduler matches results against its current
assignment and drops stale ones, so at-least-once delivery is safe.

``spawn_local_workers`` boots N of these as subprocesses against a
local pool — the simulated multi-host fleet the chaos harness, the CI
``chaos-net`` job, and the 1/2/4-host benchmark legs all stand on.
"""

from __future__ import annotations

import os
import select
import socket
import subprocess
import sys
import threading
import time
from typing import Any, List, Optional, Tuple

from repro.obs import tracing as _tracing
from repro.sched.net.frames import (
    ConnectionClosed,
    FrameError,
    enable_nodelay,
    recv_frame,
    send_frame,
)

__all__ = ["run_worker", "spawn_local_workers", "EXIT_STOPPED", "EXIT_LOST", "EXIT_EVICTED"]

EXIT_STOPPED = 0   #: scheduler sent ``stop``
EXIT_LOST = 1      #: connection lost and reconnect budget exhausted
EXIT_EVICTED = 3   #: a newer registration superseded this name


class _Runner(threading.Thread):
    """Executes one task off the serve loop; leaves the reply in ``frame``.

    ``wake`` is the serve loop's self-pipe: one byte on completion makes
    its ``select`` return immediately instead of on the next poll tick,
    which keeps per-task latency at the network RTT rather than the poll
    interval (the difference between 2x and near-linear host scaling in
    ``benchmarks/bench_sched.py``).
    """

    def __init__(self, key: str, fn: Any, kwargs: dict,
                 wake: Optional[socket.socket] = None,
                 trace: Optional[dict] = None) -> None:
        super().__init__(daemon=True, name=f"repro-net-task-{key}")
        self.key = key
        self.fn = fn
        self.kwargs = kwargs
        self.trace = trace
        self.frame: Optional[Tuple[Any, ...]] = None
        self._wake = wake

    def run(self) -> None:
        # Trace context rode in on the task frame: open an "exec" span
        # under it and activate it on *this* thread (explicit handoff —
        # the serve loop's context must not leak across tasks), so
        # PhaseCostRecords built by the task stamp the right span.
        span = None
        if self.trace is not None and _tracing.TRACER.enabled:
            span = _tracing.TRACER.start_span(
                self.key, kind="exec",
                parent=_tracing.SpanContext.from_dict(self.trace),
                attrs={"key": self.key, "transport": "tcp"},
            )
            _tracing.TRACER.activate(None if span is None else span.context)
        start = time.monotonic()
        try:
            value = self.fn(**self.kwargs)
            self.frame = ("ok", self.key, value, time.monotonic() - start)
        except BaseException as exc:  # mirror the pipe worker: report, don't die
            self.frame = (
                "error", self.key,
                f"{type(exc).__name__}: {exc}",
                time.monotonic() - start,
            )
        finally:
            if span is not None:
                _tracing.TRACER.activate(None)
                _tracing.TRACER.finish(
                    span,
                    status="ok" if self.frame and self.frame[0] == "ok" else "error",
                )
                self.frame = self.frame + ([span.to_dict()],)
            if self._wake is not None:
                try:
                    self._wake.send(b"\0")
                except OSError:
                    pass  # serve loop already gone; exit code covers it


def _serve(sock: socket.socket) -> int:
    """Serve one registered connection until stop/evict/loss.

    Returns an ``EXIT_*`` code for terminal frames; raises
    :class:`ConnectionClosed` (or ``OSError``) when the link dies and
    the caller should consider reconnecting.
    """
    runner: Optional[_Runner] = None
    inbox: List[Tuple[Any, ...]] = []
    wake_r, wake_w = socket.socketpair()
    try:
        while True:
            # The reply is ready once ``frame`` is set — the runner may
            # still be mid-teardown (it wakes us from its ``finally``, a
            # beat before ``is_alive()`` flips), and waiting for thread
            # death here would eat the wake-up and stall a full poll tick.
            if runner is not None and (
                runner.frame is not None or not runner.is_alive()
            ):
                if runner.frame is not None:
                    send_frame(sock, runner.frame)
                runner = None
            if runner is None and inbox:
                queued = inbox.pop(0)
                runner = _Runner(
                    queued[1], queued[2], dict(queued[3]), wake=wake_w,
                    trace=queued[4] if len(queued) > 4 else None,
                )
                runner.start()
            readable, _, _ = select.select([sock, wake_r], [], [], 0.05)
            if wake_r in readable:
                wake_r.recv(64)  # drain; the loop top reaps the runner
            if sock not in readable:
                continue
            frame = recv_frame(sock)
            kind = frame[0]
            if kind == "task":
                if runner is None:
                    runner = _Runner(
                        frame[1], frame[2], dict(frame[3]), wake=wake_w,
                        trace=frame[4] if len(frame) > 4 else None,
                    )
                    runner.start()
                else:
                    inbox.append(frame)
            elif kind == "ping":
                send_frame(sock, ("pong", frame[1], frame[2]))
            elif kind == "stop":
                return EXIT_STOPPED
            elif kind == "evict":
                return EXIT_EVICTED
            # Anything else (a duplicated welcome, say) is noise; ignore it.
    finally:
        wake_r.close()
        wake_w.close()


def run_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    reconnect: bool = True,
    max_reconnects: Optional[int] = None,
    backoff_base: float = 0.1,
    backoff_max: float = 2.0,
    connect_timeout: float = 5.0,
) -> int:
    """Serve tasks from the scheduler at ``(host, port)`` until told to stop.

    Blocks for the worker's whole life; returns an ``EXIT_*`` code.
    ``name`` defaults to ``<hostname>-<pid>``; keep it stable across
    restarts of the same slot so reconnects bump a generation instead of
    minting a new identity.  ``max_reconnects`` bounds redials after a
    lost connection (``None`` = unbounded, the chaos-friendly default);
    the *initial* connection gets the same budget.
    """
    name = name or f"{socket.gethostname()}-{os.getpid()}"
    meta = {"pid": os.getpid(), "host": socket.gethostname()}
    attempts = 0
    while True:
        sock: Optional[socket.socket] = None
        try:
            sock = socket.create_connection((host, port), timeout=connect_timeout)
            enable_nodelay(sock)
            # Registration is bounded by the connect timeout: a partition
            # that ate the hello must not pin the worker waiting for a
            # welcome that will never come — fail fast and redial.
            send_frame(sock, ("hello", name, meta))
            welcome = recv_frame(sock)
            if welcome[0] != "welcome":
                raise FrameError(f"expected welcome, got {welcome[0]!r}")
            sock.settimeout(30.0)  # frame reads are select-gated; backstop only
            attempts = 0  # a successful registration resets the redial budget
            return _serve(sock)
        except (ConnectionClosed, FrameError, OSError, socket.timeout):
            attempts += 1
            if not reconnect or (
                max_reconnects is not None and attempts > max_reconnects
            ):
                return EXIT_LOST
            time.sleep(min(backoff_base * (2 ** (attempts - 1)), backoff_max))
        finally:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass


def spawn_local_workers(
    address: Tuple[str, int],
    count: int,
    name_prefix: str = "local",
    reconnect: bool = True,
    connect_timeout: float = 5.0,
) -> List[subprocess.Popen]:
    """Boot ``count`` worker subprocesses dialling ``address``.

    The simulated multi-host fleet: each worker is a real OS process
    with its own interpreter, named ``{name_prefix}-{i}``.  Returns the
    ``Popen`` handles; callers own reaping them (``pool.shutdown()``
    sends every live worker ``stop``, after which they exit 0).
    """
    host, port = address
    bootstrap = (
        "import sys; from repro.sched.net.worker import run_worker; "
        "sys.exit(run_worker({host!r}, {port}, name={name!r}, "
        "reconnect={reconnect!r}, connect_timeout={connect_timeout!r}))"
    )
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = []
    for i in range(count):
        code = bootstrap.format(
            host=host, port=port, name=f"{name_prefix}-{i}",
            reconnect=reconnect, connect_timeout=connect_timeout,
        )
        procs.append(subprocess.Popen([sys.executable, "-c", code], env=env))
    return procs
