"""Content-addressed result store for campaign and sweep outcomes.

Every task a campaign runs is identified by a **canonical content key**:
the SHA-256 of the task's spec (the function it runs, its keyword
arguments, and any seed material) together with the code-relevant version
(:data:`repro.__version__` by default).  Storing outcomes under that key
gives every driver one shared, resumable cache:

* the same (function, params, version) triple always maps to the same
  entry, whichever driver or campaign computed it — a Table 1 point run
  by ``python -m repro t1a`` and the same point run inside a campaign
  share one result;
* bumping ``repro.__version__`` (or passing an explicit ``version=``)
  invalidates every entry at once, because results of changed code are
  different content;
* a killed run resumes by construction: whatever reached the store stays
  there, and only missing keys re-execute.

Layout: one JSON file per entry under ``<root>/objects/<k[:2]>/<k>.json``
(fan-out keeps directories small at campaign scale).  Writes are atomic
(temp file + ``os.replace``), reads validate the entry schema and
**quarantine** corrupt files (rename to ``*.quarantined``) instead of
failing the run — the same contract the legacy ``BENCH_*.json`` caches
had.  :meth:`ResultStore.prune` garbage-collects by age (or everything),
and :func:`import_bench_cache` migrates a legacy per-driver
``BENCH_*.json`` into the store, which supersedes those caches behind the
``parallel_sweep(store=...)`` compatibility path.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import tempfile
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

__all__ = [
    "ResultStore",
    "StoreStats",
    "content_key",
    "canonical_spec",
    "fn_ref",
    "task_spec",
    "import_bench_cache",
    "STORE_ENV",
]

#: Environment variable naming the default store directory for the CLI.
STORE_ENV = "REPRO_STORE"

#: Keys every stored entry must carry to be considered well-formed.
_ENTRY_SCHEMA = ("key", "version", "spec", "outcome", "created")


def canonical_spec(spec: Mapping[str, Any]) -> str:
    """Canonical JSON text of a task spec (sorted keys, stable repr fallback).

    Two specs that differ only in key order serialize identically, so they
    address the same content.
    """
    return json.dumps(dict(spec), sort_keys=True, default=repr)


def content_key(spec: Mapping[str, Any], version: str) -> str:
    """SHA-256 content address of ``(spec, version)`` as a hex string."""
    digest = hashlib.sha256(
        f"{version}|{canonical_spec(spec)}".encode("utf-8")
    )
    return digest.hexdigest()


def fn_ref(fn: Callable[..., Any]) -> str:
    """Stable textual identity of a task callable: ``module:qualname``.

    :func:`functools.partial` objects resolve to the wrapped function with
    the frozen arguments appended, so two partials over the same function
    with different bindings address different content.
    """
    if isinstance(fn, functools.partial):
        inner = fn_ref(fn.func)
        bound = canonical_spec({"args": list(fn.args), "kwargs": fn.keywords or {}})
        return f"{inner}|partial:{bound}"
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", repr(fn))
    return f"{module}:{qualname}"


def task_spec(
    fn: Any,
    kwargs: Mapping[str, Any],
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The canonical spec dict for one task call — what gets hashed.

    ``fn`` may be the callable itself or an explicit scope string (a
    driver name) to address by; ``extra`` carries seed material that is
    part of the task's identity but not of its keyword arguments.
    """
    ref = fn if isinstance(fn, str) else fn_ref(fn)
    spec: Dict[str, Any] = {"fn": ref, "kwargs": dict(kwargs)}
    if extra:
        spec.update(extra)
    return spec


@dataclass(frozen=True)
class StoreStats:
    """Size summary returned by :meth:`ResultStore.stats`."""

    entries: int
    bytes: int
    quarantined: int


class ResultStore:
    """Filesystem-backed content-addressed store of task outcomes.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).
    version:
        Code-relevant version salt folded into every key; defaults to
        :data:`repro.__version__`.  Change the code meaningfully, bump the
        version, and every old entry silently misses.
    """

    def __init__(self, root: str, version: Optional[str] = None) -> None:
        if version is None:
            from repro import __version__ as version
        self.root = os.path.abspath(root)
        self.version = str(version)

    # -- keys --------------------------------------------------------------

    def key_for(
        self,
        fn: Any,
        kwargs: Mapping[str, Any],
        extra: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Content key of one task call under this store's version.

        ``fn`` is a callable (addressed by its ``module:qualname``) or an
        explicit scope string.
        """
        return content_key(task_spec(fn, kwargs, extra), self.version)

    # -- paths -------------------------------------------------------------

    @property
    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        """Filesystem path of ``key``'s entry (which may not exist yet)."""
        return os.path.join(self._objects_dir, key[:2], f"{key}.json")

    # -- read/write --------------------------------------------------------

    def contains(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    def put(
        self,
        key: str,
        outcome: Mapping[str, Any],
        spec: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Atomically persist ``outcome`` under ``key``; returns the path.

        The entry records the spec (for ``status``/debugging), the store
        version, and a creation timestamp (used by :meth:`prune`).
        """
        entry = {
            "key": key,
            "version": self.version,
            "spec": dict(spec) if spec is not None else {},
            "outcome": dict(outcome),
            "created": time.time(),
        }
        path = self.path_for(key)
        directory = os.path.dirname(path)
        # A concurrent prune() may rmdir the shard directory between our
        # makedirs and the mkstemp/replace below (it only removes *empty*
        # shards, and ours is empty until the replace lands).  That
        # surfaces as FileNotFoundError here; recreate the shard and try
        # again rather than failing a task whose result is in hand.
        for attempt in range(3):
            os.makedirs(directory, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(prefix=".store-", dir=directory)
            except FileNotFoundError:
                continue
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh, indent=1, sort_keys=True, default=repr)
                os.replace(tmp, path)  # atomic: readers never see a torn entry
            except FileNotFoundError:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                continue
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            return path
        raise OSError(
            f"could not persist {key}: shard directory {directory} kept "
            "vanishing (racing prune?)"
        )

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The full entry for ``key``, or None when missing/quarantined.

        An unreadable or schema-invalid entry is renamed to
        ``*.quarantined`` (with a warning) and reported as missing, so one
        torn write costs one re-run, never the campaign.
        """
        path = self.path_for(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if not isinstance(entry, dict) or any(k not in entry for k in _ENTRY_SCHEMA):
                raise ValueError("entry does not match the store schema")
            if not isinstance(entry["outcome"], dict):
                raise ValueError("entry outcome is not an object")
        except (OSError, ValueError) as exc:
            self._quarantine(path, str(exc))
            return None
        return entry

    def get_outcome(self, key: str) -> Optional[Dict[str, Any]]:
        """Just the outcome dict for ``key`` (None when absent)."""
        entry = self.get(key)
        return None if entry is None else entry["outcome"]

    def _quarantine(self, path: str, reason: str) -> None:
        quarantined = path + ".quarantined"
        try:
            os.replace(path, quarantined)
        except OSError:  # pragma: no cover - lost a race with another reader
            return
        warnings.warn(
            f"result-store entry {path} is unusable ({reason}); moved to "
            f"{quarantined} — the task will re-run",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- enumeration and GC ------------------------------------------------

    def keys(self) -> Iterator[str]:
        """All stored keys (quarantined files excluded)."""
        objects = self._objects_dir
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield name[: -len(".json")]

    def stats(self) -> StoreStats:
        """Entry count, total bytes, and quarantined-file count."""
        entries = 0
        size = 0
        quarantined = 0
        objects = self._objects_dir
        if os.path.isdir(objects):
            for shard in os.listdir(objects):
                shard_dir = os.path.join(objects, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in os.listdir(shard_dir):
                    path = os.path.join(shard_dir, name)
                    if name.endswith(".quarantined"):
                        quarantined += 1
                    elif name.endswith(".json"):
                        entries += 1
                        size += os.path.getsize(path)
        return StoreStats(entries=entries, bytes=size, quarantined=quarantined)

    def prune(
        self,
        older_than_s: Optional[float] = None,
        keep: Optional[Any] = None,
        dry_run: bool = False,
    ) -> List[str]:
        """Garbage-collect entries; returns the pruned keys.

        ``older_than_s`` keeps entries created within the last that-many
        seconds (``0`` prunes everything, ``None`` likewise — an explicit
        full GC); ``keep`` is an optional collection of keys to retain
        regardless of age.  Quarantined files are always removed.  With
        ``dry_run`` nothing is deleted.
        """
        keep_set = set(keep) if keep is not None else set()
        cutoff = None if older_than_s is None else time.time() - older_than_s
        pruned: List[str] = []
        for key in list(self.keys()):
            if key in keep_set:
                continue
            path = self.path_for(key)
            if cutoff is not None:
                entry = self.get(key)
                if entry is None:
                    continue  # quarantined by the read; swept below
                if entry["created"] > cutoff:
                    continue
            pruned.append(key)
            if not dry_run:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - racing GC
                    pass
        if not dry_run:
            objects = self._objects_dir
            if os.path.isdir(objects):
                for shard in os.listdir(objects):
                    shard_dir = os.path.join(objects, shard)
                    if not os.path.isdir(shard_dir):
                        continue
                    for name in os.listdir(shard_dir):
                        if name.endswith(".quarantined"):
                            try:
                                os.unlink(os.path.join(shard_dir, name))
                            except OSError:  # pragma: no cover
                                pass
                    if not os.listdir(shard_dir):
                        os.rmdir(shard_dir)
        return pruned


def import_bench_cache(
    store: ResultStore,
    cache_path: str,
    run: Callable[..., Any],
    base_seed: Any = None,
) -> int:
    """Migrate a legacy ``BENCH_*.json`` sweep cache into ``store``.

    Entries are re-keyed exactly the way ``parallel_sweep(store=...)``
    keys live runs — so after migrating, a store-backed re-run of the same
    driver is served entirely from the imported results.  Legacy keys that
    do not parse back to a parameter dict are skipped.  Returns the number
    of imported entries.
    """
    if not os.path.exists(cache_path):
        return 0
    with open(cache_path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{cache_path} is not a sweep cache (top level not an object)")
    imported = 0
    for legacy_key, outcome in data.items():
        try:
            params = json.loads(legacy_key)
        except ValueError:
            continue
        if not isinstance(params, dict) or not isinstance(outcome, dict):
            continue
        extra = {"base_seed": base_seed} if base_seed is not None else None
        key = store.key_for(run, params, extra)
        store.put(key, outcome, spec=task_spec(run, params, extra))
        imported += 1
    return imported
