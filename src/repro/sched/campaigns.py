"""The shipped campaigns: Table 1, Section 8, the chaos gate, and a demo.

Each builder returns a validated :class:`~repro.sched.campaign.Campaign`
over module-level (picklable) task functions:

* ``table1`` — every cell of the four Table 1 drivers (QSM / s-QSM / BSP
  time, plus the rounds table) as one task per (driver, problem,
  variant-or-model, n) point, with one inline verdict task per driver
  aggregating correctness and bound-tracking.  Points are prioritised by
  ``n`` so the long poles start first and pack the pool.
* ``section8`` — the Section 8 upper-bound suite: one task per (claim, n)
  point, one inline verdict per claim re-running the driver's
  constant-fit + trend check, and a final suite verdict.
* ``chaos`` — the docs/ROBUSTNESS.md gate: one task per chaos case
  (winner-policy sweep + adversary search + fault schedules), gated by an
  inline all-survived verdict.
* ``cross_model`` — the cross-model table of
  ``benchmarks/bench_cross_model.py``: one task per (problem, model, n)
  cell over all seven models (QSM, s-QSM, QSM(g,d), BSP, PRAM, MPC, PEM),
  a per-problem verdict, and a suite verdict.
* ``demo`` — a small diamond-shaped graph of cheap parity runs with an
  adjustable per-task delay; this is what ``python -m repro campaign run
  demo`` and the CI resume-after-kill check execute.

Builders import the ``benchmarks`` drivers lazily so that ``repro.sched``
itself never depends on the benchmark tree being importable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.sched.campaign import Campaign, TaskSpec

__all__ = [
    "CAMPAIGNS",
    "build_campaign",
    "demo_campaign",
    "table1_campaign",
    "section8_campaign",
    "chaos_campaign",
    "cross_model_campaign",
    "demo_task",
    "run_chaos_case",
]


# -- task functions (module-level: every pool task must pickle) -------------


def demo_task(n: int = 64, delay: float = 0.05) -> Dict[str, Any]:
    """A cheap, self-verifying parity run padded by ``delay`` seconds.

    The sleep stretches the campaign's wall time enough that the CI
    resume check can kill it mid-run and observe a partial store.
    """
    from repro.algorithms.parity import parity_tree
    from repro.core import SQSM, SQSMParams
    from repro.problems import gen_bits, verify_parity

    bits = gen_bits(n, seed=n)
    machine = SQSM(SQSMParams(g=4.0), record_costs=True)
    result = parity_tree(machine, bits)
    if delay > 0:
        time.sleep(delay)
    return {
        "measured": float(result.time),
        "correct": bool(verify_parity(bits, result.value)),
        "n": n,
        # Per-phase cost provenance rides the outcome so a campaign trace
        # can show each task's simulated phase timeline (docs/SCHEDULER.md).
        "cost_records": [rec.to_dict() for rec in machine.cost_records],
    }


def demo_summary(results: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Inline aggregation of the demo points: totals and a correctness bit."""
    return {
        "points": len(results),
        "total_time": sum(r["measured"] for r in results.values()),
        "correct": all(r["correct"] for r in results.values()),
    }


def run_chaos_case(
    only: str,
    n: int = 64,
    seed: Any = 0,
    budget: int = 24,
    max_attempts: int = 3,
) -> Dict[str, Any]:
    """Run the chaos probes for the single case matching ``only``.

    Wraps :func:`repro.faults.harness.run_chaos_suite` with a case filter
    and flattens the report into a JSON-friendly outcome dict.
    """
    from repro.faults.harness import run_chaos_suite

    report = run_chaos_suite(
        n=n, seed=seed, budget=budget, max_attempts=max_attempts, only=only
    )
    if not report.results:
        raise ValueError(f"no chaos case matches {only!r}")
    return {
        "case": only,
        "correct": report.ok,
        "probes": len(report.results),
        "failures": [
            {"probe": r.probe, "attempts": r.attempts, "note": r.note}
            for r in report.failures
        ],
    }


def _all_correct_verdict(
    results: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Any]:
    """Inline verdict: every dependency's outcome must say ``correct``."""
    bad = sorted(name for name, r in results.items() if not r.get("correct"))
    verdict = {"tasks": len(results), "correct": not bad}
    if bad:
        verdict["incorrect"] = bad
    return verdict


def _s8_claim_verdict(
    results: Mapping[str, Mapping[str, Any]],
    ns: Sequence[int] = (),
) -> Dict[str, Any]:
    """Inline per-claim check mirroring ``bench_s8_upper_bounds.collect``:

    fit the constant at the smallest n, then require the measured curve to
    track the claimed O() form (within 1.75x of the fit, non-growing
    log-log ratio trend).
    """
    from repro.analysis.fit import ratio_trend

    by_n = sorted(
        ((r["measured"], r["claimed"]) for r in results.values()),
        key=lambda pair: pair[1],
    )
    ns = sorted(ns) if ns else list(range(1, len(by_n) + 1))
    measured = [m for m, _ in by_n]
    claims = [c for _, c in by_n]
    c = measured[0] / claims[0]
    within = all(m <= 1.75 * c * v for m, v in zip(measured, claims))
    trend = ratio_trend(ns, measured, claims)
    return {
        "correct": bool(within and trend <= 0.6),
        "within": bool(within),
        "trend": float(trend),
        "fit_constant": float(c),
    }


# -- campaign builders ------------------------------------------------------


def demo_campaign(points: int = 8, delay: float = 0.05) -> Campaign:
    """A diamond graph of ``points`` cheap parity tasks plus a summary."""
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    tasks: List[TaskSpec] = []
    names: List[str] = []
    for i in range(points):
        n = 32 + 16 * i  # distinct n => distinct content keys per point
        name = f"demo/point-{i:02d}"
        names.append(name)
        tasks.append(
            TaskSpec(name, demo_task, {"n": n, "delay": delay}, priority=i)
        )
    tasks.append(
        TaskSpec("demo/summary", demo_summary, deps=tuple(names), inline=True)
    )
    return Campaign("demo", tasks)


def _table1_driver_tasks(
    prefix: str,
    fn: Callable[..., Any],
    axes: Mapping[str, Sequence[Any]],
    ns: Sequence[int],
) -> List[TaskSpec]:
    """One task per grid cell of a Table 1 driver, plus its verdict."""
    axis, values = next(iter(axes.items()))
    tasks: List[TaskSpec] = []
    names: List[str] = []
    for problem in ("LAC", "OR", "Parity"):
        for value in values:
            for n in ns:
                name = f"{prefix}/{problem}/{value}/n={n}"
                names.append(name)
                tasks.append(
                    TaskSpec(
                        name, fn,
                        {"problem": problem, axis: value, "n": n},
                        priority=n,  # big points are the long poles: start early
                    )
                )
    tasks.append(
        TaskSpec(
            f"{prefix}/verdict", _all_correct_verdict,
            deps=tuple(names), inline=True,
        )
    )
    return tasks


def table1_campaign(ns: Optional[Sequence[int]] = None) -> Campaign:
    """Every cell of the four Table 1 drivers, one verdict per driver."""
    from benchmarks.bench_table1_bsp_time import run_t1c_point
    from benchmarks.bench_table1_qsm_time import run_t1a_point
    from benchmarks.bench_table1_rounds import P_FOR, run_t1d_point
    from benchmarks.bench_table1_sqsm_time import run_t1b_point
    from benchmarks import bench_table1_qsm_time, bench_table1_sqsm_time
    from benchmarks import bench_table1_bsp_time

    variants = ("deterministic", "randomized")
    tasks: List[TaskSpec] = []
    tasks += _table1_driver_tasks(
        "t1a", run_t1a_point, {"variant": variants},
        list(ns) if ns else bench_table1_qsm_time.NS,
    )
    tasks += _table1_driver_tasks(
        "t1b", run_t1b_point, {"variant": variants},
        list(ns) if ns else bench_table1_sqsm_time.NS,
    )
    tasks += _table1_driver_tasks(
        "t1c", run_t1c_point, {"variant": variants},
        list(ns) if ns else bench_table1_bsp_time.NS,
    )
    # t1d sweeps (model, n) pairs with n/p fixed by the driver's SWEEP.
    d_ns = [n for n in (list(ns) if ns else sorted(P_FOR)) if n in P_FOR]
    tasks += _table1_driver_tasks(
        "t1d", run_t1d_point, {"model": ("QSM", "s-QSM", "BSP")}, d_ns,
    )
    return Campaign("table1", tasks)


def section8_campaign(ns: Optional[Sequence[int]] = None) -> Campaign:
    """The Section 8 suite: (claim, n) points, per-claim and suite verdicts."""
    from benchmarks import bench_s8_upper_bounds
    from benchmarks.bench_s8_upper_bounds import run_s8_point

    sweep = list(ns) if ns else list(bench_s8_upper_bounds.NS)
    claims = bench_s8_upper_bounds._claims()
    tasks: List[TaskSpec] = []
    verdicts: List[str] = []
    for idx, (claim_name, _, _) in enumerate(claims):
        point_names = []
        for n in sweep:
            name = f"s8/claim-{idx:02d}/n={n}"
            point_names.append(name)
            tasks.append(
                TaskSpec(name, run_s8_point, {"idx": idx, "n": n}, priority=n)
            )
        verdict = f"s8/claim-{idx:02d}/verdict"
        verdicts.append(verdict)
        tasks.append(
            TaskSpec(
                verdict, _s8_claim_verdict, {"ns": list(sweep)},
                deps=tuple(point_names), inline=True,
            )
        )
    tasks.append(
        TaskSpec(
            "s8/verdict", _all_correct_verdict,
            deps=tuple(verdicts), inline=True,
        )
    )
    return Campaign("section8", tasks)


def chaos_campaign(
    n: int = 64,
    seed: Any = 0,
    budget: int = 24,
    max_attempts: int = 3,
) -> Campaign:
    """The chaos gate: one task per case, gated by an all-survived verdict."""
    from repro.faults.harness import default_cases

    tasks: List[TaskSpec] = []
    names: List[str] = []
    for case in default_cases(n=n, seed=seed):
        name = f"chaos/{case.name}"
        names.append(name)
        tasks.append(
            TaskSpec(
                name, run_chaos_case,
                {
                    "only": case.name, "n": n, "seed": seed,
                    "budget": budget, "max_attempts": max_attempts,
                },
            )
        )
    tasks.append(
        TaskSpec(
            "chaos/verdict", _all_correct_verdict,
            deps=tuple(names), inline=True,
        )
    )
    return Campaign("chaos", tasks)


def cross_model_campaign(ns: Optional[Sequence[int]] = None) -> Campaign:
    """The cross-model table: one task per (problem, model, n) cell.

    Mirrors ``benchmarks/bench_cross_model.py`` — every problem is run on
    all seven models (QSM, s-QSM, QSM(g,d), BSP, PRAM, MPC, PEM) with a
    per-problem all-correct verdict and a suite verdict on top.
    """
    from benchmarks import bench_cross_model
    from benchmarks.bench_cross_model import run_cross_model_point

    sweep = list(ns) if ns else list(bench_cross_model.NS)
    tasks: List[TaskSpec] = []
    verdicts: List[str] = []
    for problem in bench_cross_model.PROBLEMS:
        point_names = []
        for model in bench_cross_model.MODELS:
            for n in sweep:
                name = f"xmodel/{problem}/{model}/n={n}"
                point_names.append(name)
                tasks.append(
                    TaskSpec(
                        name, run_cross_model_point,
                        {"problem": problem, "model": model, "n": n},
                        priority=n,
                    )
                )
        verdict = f"xmodel/{problem}/verdict"
        verdicts.append(verdict)
        tasks.append(
            TaskSpec(
                verdict, _all_correct_verdict,
                deps=tuple(point_names), inline=True,
            )
        )
    tasks.append(
        TaskSpec(
            "xmodel/verdict", _all_correct_verdict,
            deps=tuple(verdicts), inline=True,
        )
    )
    return Campaign("cross_model", tasks)


#: Name -> builder registry behind ``python -m repro campaign``.
CAMPAIGNS: Dict[str, Callable[..., Campaign]] = {
    "demo": demo_campaign,
    "table1": table1_campaign,
    "section8": section8_campaign,
    "chaos": chaos_campaign,
    "cross_model": cross_model_campaign,
}


def build_campaign(name: str, **opts: Any) -> Campaign:
    """Build the named campaign, forwarding ``opts`` to its builder."""
    try:
        builder = CAMPAIGNS[name]
    except KeyError:
        raise ValueError(
            f"unknown campaign {name!r}; available: {', '.join(sorted(CAMPAIGNS))}"
        ) from None
    return builder(**opts)
