"""Bit-vector problems: Parity and OR."""

from __future__ import annotations

from typing import List, Sequence

from repro.util.seeding import RngLike, derive_rng

__all__ = ["gen_bits", "verify_parity", "verify_or"]


def gen_bits(n: int, density: float = 0.5, seed: RngLike = None) -> List[int]:
    """n iid Bernoulli(density) bits.

    ``density=0.5`` is the uniform distribution Theorem 3.2's adversary
    uses; small densities exercise the sparse regimes of the OR bound's
    ``H_i`` distributions.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0,1], got {density}")
    rng = derive_rng(seed)
    return [int(b) for b in (rng.random(n) < density)]


def verify_parity(bits: Sequence[int], answer: int) -> bool:
    """True iff ``answer`` is the parity of ``bits``."""
    if answer not in (0, 1):
        return False
    return answer == (sum(int(b) for b in bits) & 1)


def verify_or(bits: Sequence[int], answer: int) -> bool:
    """True iff ``answer`` is the OR of ``bits``."""
    if answer not in (0, 1):
        return False
    return answer == (1 if any(int(b) == 1 for b in bits) else 0)
