"""Load-balancing instances and contract."""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.util.seeding import RngLike, derive_rng

__all__ = ["gen_loads", "verify_load_balance"]


def gen_loads(
    n: int,
    h: int,
    skew: float = 1.0,
    seed: RngLike = None,
) -> List[List[str]]:
    """``h`` distinct objects over ``n`` processors.

    ``skew=1`` places objects uniformly; larger skews concentrate them on
    low-numbered processors (Zipf-like), the adversarial shape for
    redistribution.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if h < 0:
        raise ValueError(f"h must be non-negative, got {h}")
    if skew < 1.0:
        raise ValueError(f"skew must be >= 1, got {skew}")
    rng = derive_rng(seed)
    weights = 1.0 / (1.0 + rng.permutation(n)) ** skew
    weights = weights / weights.sum()
    out: List[List[str]] = [[] for _ in range(n)]
    owners = rng.choice(n, size=h, p=weights)
    for k, owner in enumerate(owners):
        out[int(owner)].append(f"obj#{k}")
    return out


def verify_load_balance(
    before: Sequence[Sequence[Any]],
    after: Sequence[Sequence[Any]],
    max_per_proc_constant: float = 2.0,
) -> bool:
    """Check the redistribution contract.

    1. Same multiset of objects, same number of processors.
    2. Every processor ends with at most
       ``max_per_proc_constant * (1 + h/n)`` objects.
    """
    n = len(before)
    if len(after) != n or n == 0:
        return False
    flat_before = sorted(str(x) for objs in before for x in objs)
    flat_after = sorted(str(x) for objs in after for x in objs)
    if flat_before != flat_after:
        return False
    h = len(flat_before)
    cap = max_per_proc_constant * (1.0 + h / n)
    return all(len(objs) <= cap for objs in after)
