"""Sorting and padded-sort instances and contracts."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.util.seeding import RngLike, derive_rng

__all__ = [
    "gen_sort_input",
    "gen_padded_sort_input",
    "verify_sorted",
    "verify_padded_sort",
]


def gen_sort_input(n: int, universe: int = 1 << 30, seed: RngLike = None) -> List[int]:
    """n iid uniform integers (duplicates allowed)."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = derive_rng(seed)
    return [int(v) for v in rng.integers(0, universe, size=n)]


def gen_padded_sort_input(n: int, seed: RngLike = None) -> List[float]:
    """n iid U[0,1] reals — the padded-sort input distribution."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = derive_rng(seed)
    return [float(v) for v in rng.random(n)]


def verify_sorted(input_values: Sequence[Any], output_values: Sequence[Any]) -> bool:
    """Output is a sorted permutation of the input."""
    return list(output_values) == sorted(input_values)


def verify_padded_sort(
    input_values: Sequence[float],
    output_array: Sequence[Optional[float]],
    size_slack: float = 3.0,
) -> bool:
    """Check the padded-sort contract.

    1. The non-NULL entries of the output are exactly the input values in
       nondecreasing order (NULLs may appear anywhere between them).
    2. Output size is linear with modest constant: ``<= size_slack * n``
       plus a small additive allowance.  (The paper's definition asks for
       ``n + o(n)``; finite-n benches report the measured ratio, and the
       default ``size_slack`` just rejects blow-ups.)
    """
    non_null = [v for v in output_array if v is not None]
    if non_null != sorted(input_values):
        return False
    n = max(len(input_values), 1)
    return len(output_array) <= size_slack * n + 256
