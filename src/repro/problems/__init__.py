"""Problem instance generators and output verifiers.

One module per problem family from the paper.  Generators produce inputs
under the distributions the paper's arguments use (uniform bits for
parity/OR, sparse item arrays for LAC, uniform [0,1] reals for padded sort,
random colorings for chromatic load balancing); verifiers check algorithm
outputs against the problem contracts, independently of how the algorithms
work.  The test-suite and the bench harness only trust these verifiers.
"""

from repro.problems.boolean import gen_bits, verify_or, verify_parity
from repro.problems.compaction import gen_sparse_array, verify_lac
from repro.problems.listrank import gen_list, verify_list_ranks
from repro.problems.loadbal import gen_loads, verify_load_balance
from repro.problems.sortprob import (
    gen_padded_sort_input,
    gen_sort_input,
    verify_padded_sort,
    verify_sorted,
)

__all__ = [
    "gen_bits",
    "verify_parity",
    "verify_or",
    "gen_sparse_array",
    "verify_lac",
    "gen_loads",
    "verify_load_balance",
    "gen_padded_sort_input",
    "gen_sort_input",
    "verify_padded_sort",
    "verify_sorted",
    "gen_list",
    "verify_list_ranks",
]
