"""LAC instances and the linear-approximate-compaction contract."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.util.seeding import RngLike, derive_rng

__all__ = ["gen_sparse_array", "verify_lac"]


def gen_sparse_array(
    n: int,
    h: int,
    seed: RngLike = None,
    exact: bool = False,
) -> List[Optional[str]]:
    """An n-cell array holding at most (or, with ``exact``, exactly) h items.

    Items are distinct strings tagged with their original position, so
    verifiers can detect loss or duplication.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0 <= h <= n:
        raise ValueError(f"need 0 <= h <= n, got h={h}, n={n}")
    rng = derive_rng(seed)
    count = h if exact else int(rng.integers(0, h + 1))
    arr: List[Optional[str]] = [None] * n
    for idx in rng.choice(n, size=count, replace=False) if count else []:
        arr[int(idx)] = f"item@{int(idx)}"
    return arr


def verify_lac(
    input_array: Sequence[Any],
    output_array: Sequence[Any],
    h: int,
    expansion_limit: float = 16.0,
) -> bool:
    """Check the h-LAC contract.

    1. Every input item appears in the output exactly once, nothing else.
    2. The output array has size ``O(h)``: at most ``expansion_limit * h``
       cells (plus a small additive allowance for the h=0 edge).
    """
    in_items = [v for v in input_array if v is not None]
    out_items = [v for v in output_array if v is not None]
    if sorted(map(str, in_items)) != sorted(map(str, out_items)):
        return False
    if len(output_array) > expansion_limit * max(h, 1) + 8:
        return False
    return True
