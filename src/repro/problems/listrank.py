"""List-ranking instances and contract."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.util.seeding import RngLike, derive_rng

__all__ = ["gen_list", "verify_list_ranks"]


def gen_list(n: int, seed: RngLike = None) -> Tuple[List[Optional[int]], List[int]]:
    """A random n-node linked list.

    Returns ``(next_ptrs, order)`` where ``order`` is the head-to-tail node
    sequence (ground truth for verification).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = derive_rng(seed)
    order = [int(i) for i in rng.permutation(n)]
    next_ptrs: List[Optional[int]] = [None] * n
    for a, b in zip(order, order[1:]):
        next_ptrs[a] = b
    return next_ptrs, order


def verify_list_ranks(
    next_ptrs: Sequence[Optional[int]],
    ranks: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> bool:
    """Check ranks against a sequential traversal.

    ``ranks[i]`` must equal the sum of weights of node i and everything
    after it (unit weights by default).
    """
    n = len(next_ptrs)
    if len(ranks) != n:
        return False
    w = list(weights) if weights is not None else [1] * n
    # Find the head: the node with no predecessor.
    has_pred = [False] * n
    for nxt in next_ptrs:
        if nxt is not None:
            if not 0 <= nxt < n:
                return False
            has_pred[nxt] = True
    heads = [i for i in range(n) if not has_pred[i]]
    if n == 0:
        return True
    if len(heads) != 1:
        return False
    # Sequential suffix sums along the list.
    chain = []
    node: Optional[int] = heads[0]
    seen = set()
    while node is not None:
        if node in seen:
            return False  # cycle
        seen.add(node)
        chain.append(node)
        node = next_ptrs[node]
    if len(chain) != n:
        return False
    suffix = 0.0
    expected = {}
    for node in reversed(chain):
        suffix += w[node]
        expected[node] = suffix
    return all(abs(ranks[i] - expected[i]) < 1e-9 for i in range(n))
