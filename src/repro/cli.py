"""Command-line entry point: regenerate the paper's tables.

``python -m repro`` runs every experiment of DESIGN.md's index (the four
Table 1 sub-tables, the Section 8 upper-bound tracking table, the
lower-bound machinery demonstrations and the ablations) and prints the
combined report.  ``python -m repro t1a`` (etc.) runs a single experiment.

This is the same code path the pytest benches assert on; the CLI just
prints without asserting, so it is the cheapest way to regenerate
EXPERIMENTS.md's numbers.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict

__all__ = ["main", "EXPERIMENTS"]


def _t1a() -> None:
    from benchmarks.bench_table1_qsm_time import main

    main()


def _t1b() -> None:
    from benchmarks.bench_table1_sqsm_time import main

    main()


def _t1c() -> None:
    from benchmarks.bench_table1_bsp_time import main

    main()


def _t1d() -> None:
    from benchmarks.bench_table1_rounds import main

    main()


def _s8() -> None:
    from benchmarks.bench_s8_upper_bounds import main

    main()


def _lb() -> None:
    from benchmarks.bench_lb_machinery import main

    main()


def _abl() -> None:
    from benchmarks.bench_ablations import main

    main()


def _rel() -> None:
    from benchmarks.bench_related_problems import main

    main()


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "t1a": _t1a,
    "t1b": _t1b,
    "t1c": _t1c,
    "t1d": _t1d,
    "s8": _s8,
    "rel": _rel,
    "lb": _lb,
    "abl": _abl,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:", ", ".join(EXPERIMENTS), "(default: all)")
        return 0
    chosen = argv or list(EXPERIMENTS)
    unknown = [a for a in chosen if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; know {list(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for i, name in enumerate(chosen):
        if i:
            print("\n" + "=" * 78 + "\n")
        print(f"### experiment {name}\n")
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
