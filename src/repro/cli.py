"""Command-line entry point: regenerate the paper's tables.

``python -m repro`` runs every experiment of DESIGN.md's index (the four
Table 1 sub-tables, the Section 8 upper-bound tracking table, the
lower-bound machinery demonstrations and the ablations) and prints the
combined report.  ``python -m repro t1a`` (etc.) runs a single experiment.

``--jobs N`` sets the worker-process count used by every
:func:`repro.analysis.parallel_sweep.parallel_sweep` call in the run (it
exports ``REPRO_JOBS``); ``--jobs 1`` forces serial execution.

``python -m repro trace`` is not an experiment: it runs one algorithm on a
cost-recording machine, prints the per-phase cost breakdown and the
dominant-term summary, and (with ``--export chrome|jsonl``) writes the
phase cost records to a Chrome trace-event file (load it at
https://ui.perfetto.dev) or a JSONL event stream.  See
docs/OBSERVABILITY.md.

``python -m repro chaos`` is the robustness gate: every Section 8
algorithm under every winner policy, an adversarial winner search, and the
shipped fault schedules, plus the fault-tolerant sweep-runner demo.  See
docs/ROBUSTNESS.md.

``python -m repro campaign run|resume|status|prune|list`` drives the
campaign scheduler (:mod:`repro.sched`): declarative task DAGs executed on
a warm worker pool with outcomes persisted to a content-addressed result
store, so a killed campaign resumes from what it already computed.  See
docs/SCHEDULER.md.

``python -m repro metrics dump`` prints the process-wide runtime metrics
registry (:mod:`repro.obs.metrics`) as a table — or the last snapshot of
a ``--metrics`` JSONL stream; ``python -m repro campaign run --metrics``
streams those snapshots while a campaign runs and ``python -m repro
campaign status --follow`` tails them as live progress.  ``python -m
repro bench check`` is the bench-regression watchdog: it diffs current
``BENCH_*.json`` (or result-store) points against a committed baseline
with noise-aware thresholds and exits nonzero on regression.  See
docs/OBSERVABILITY.md.

``python -m repro version`` (or ``--version``) prints the package version
— the same string that salts every result-store content key.

This is the same code path the pytest benches assert on; the CLI just
prints without asserting, so it is the cheapest way to regenerate
EXPERIMENTS.md's numbers.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "main",
    "EXPERIMENTS",
    "parse_jobs",
    "run_trace",
    "run_chaos",
    "run_campaign_cli",
    "run_metrics",
    "run_bench",
    "run_version",
]


def _t1a() -> None:
    from benchmarks.bench_table1_qsm_time import main

    main()


def _t1b() -> None:
    from benchmarks.bench_table1_sqsm_time import main

    main()


def _t1c() -> None:
    from benchmarks.bench_table1_bsp_time import main

    main()


def _t1d() -> None:
    from benchmarks.bench_table1_rounds import main

    main()


def _s8() -> None:
    from benchmarks.bench_s8_upper_bounds import main

    main()


def _lb() -> None:
    from benchmarks.bench_lb_machinery import main

    main()


def _abl() -> None:
    from benchmarks.bench_ablations import main

    main()


def _rel() -> None:
    from benchmarks.bench_related_problems import main

    main()


def _perf() -> None:
    from benchmarks.bench_phase_engine import main

    main()


def _sched() -> None:
    from benchmarks.bench_sched import main

    main()


def _xmodel() -> None:
    from benchmarks.bench_cross_model import main

    main()


EXPERIMENTS: Dict[str, Callable[[], None]] = {
    "t1a": _t1a,
    "t1b": _t1b,
    "t1c": _t1c,
    "t1d": _t1d,
    "s8": _s8,
    "rel": _rel,
    "lb": _lb,
    "abl": _abl,
    "perf": _perf,
    "sched": _sched,
    "xmodel": _xmodel,
}


def _run_trace_merge(argv: List[str]) -> int:
    """``python -m repro trace merge``: fold span files into one Perfetto view.

    Reads one or more ``repro.trace/1`` JSONL files (the scheduler's sink
    plus any per-worker ``REPRO_TRACE_PATH`` files from other hosts),
    deduplicates spans by ``(trace_id, span_id)``, and writes a single
    trace-event JSON whose flow arrows link each request span down
    through job, task, and exec rows.  Also prints the percentile SLO
    summary computed over the merged spans.
    """
    import argparse
    import json as _json

    parser = argparse.ArgumentParser(
        prog="python -m repro trace merge",
        description=(
            "Merge repro.trace/1 span files (scheduler + workers, any "
            "number of hosts) into one Perfetto-loadable trace with flow "
            "links, and print the percentile SLO summary."
        ),
    )
    parser.add_argument(
        "files", nargs="+", metavar="SPANS.jsonl",
        help="repro.trace/1 files to merge (later duplicates are dropped)",
    )
    parser.add_argument(
        "--out", default="trace-merged.json", metavar="PATH",
        help="output trace-event JSON (default: trace-merged.json)",
    )
    parser.add_argument(
        "--slo-json", default=None, metavar="PATH",
        help="also write the SLO summary as JSON",
    )
    args = parser.parse_args(argv)

    from repro.obs.exporters import write_combined_trace
    from repro.obs.tracing import merge_trace_files, slo_summary

    spans = merge_trace_files(args.files)
    if not spans:
        print("error: no repro.trace/1 spans found in "
              + ", ".join(args.files), file=sys.stderr)
        return 1
    count = write_combined_trace(args.out, trace_spans=spans)
    traces = sorted({s.get("trace_id") for s in spans})
    hosts = sorted({s.get("host") for s in spans if s.get("host")})
    print(f"merged {len(spans)} span(s) across {len(traces)} trace(s) "
          f"from {len(args.files)} file(s)"
          + (f" ({', '.join(hosts)})" if hosts else ""))
    print(f"wrote {count} trace events to {args.out} "
          "(load at https://ui.perfetto.dev)")
    summary = slo_summary(spans)
    print(_format_slo(summary))
    if args.slo_json:
        with open(args.slo_json, "w", encoding="utf-8") as fh:
            _json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote SLO summary to {args.slo_json}")
    return 0


def run_trace(argv: List[str]) -> int:
    """``python -m repro trace``: run one algorithm with cost recording on.

    Prints the per-phase cost breakdown (:func:`repro.analysis.timeline.explain`)
    and the dominant-term summary, then optionally exports the records.
    The ``merge`` subcommand (:func:`_run_trace_merge`) instead folds
    ``repro.trace/1`` distributed-trace span files into one Perfetto view.
    """
    if argv and argv[0] == "merge":
        return _run_trace_merge(argv[1:])
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one algorithm on a cost-recording machine and inspect / "
            "export its per-phase cost provenance.  (`trace merge` folds "
            "repro.trace/1 distributed-trace span files into one "
            "Perfetto view instead.)"
        ),
    )
    parser.add_argument(
        "--model", choices=["qsm", "sqsm", "bsp"], default="sqsm",
        help="machine model to run on (default: sqsm)",
    )
    parser.add_argument("--n", type=int, default=256, help="input size (default: 256)")
    parser.add_argument("--g", type=float, default=4.0, help="bandwidth gap g (default: 4)")
    parser.add_argument(
        "--export", choices=["chrome", "jsonl"], default=None, dest="export_format",
        help="write the cost records to a file (chrome: Perfetto-loadable "
        "trace-event JSON; jsonl: one PhaseCostRecord per line)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path for --export (default: trace.json / trace.jsonl)",
    )
    args = parser.parse_args(argv)

    from repro.algorithms.parity import parity_blocks, parity_bsp, parity_tree
    from repro.analysis.timeline import explain, explain_summary
    from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
    from repro.problems import gen_bits, verify_parity

    bits = gen_bits(args.n, seed=args.n)
    if args.model == "qsm":
        machine = QSM(QSMParams(g=args.g), record_costs=True)
        result = parity_blocks(machine, bits)
    elif args.model == "sqsm":
        machine = SQSM(SQSMParams(g=args.g), record_costs=True)
        result = parity_tree(machine, bits)
    else:
        machine = BSP(64, BSPParams(g=args.g, L=4 * args.g), record_costs=True)
        result = parity_bsp(machine, bits)
    ok = verify_parity(bits, result.value)

    print(f"parity(n={args.n}) on {machine.model_label} (g={args.g:g}): "
          f"answer {'correct' if ok else 'WRONG'}, cost {result.time:g}\n")
    print(explain(machine))
    print()
    print(explain_summary(machine))

    if args.export_format:
        from repro.obs import write_chrome_trace, write_jsonl

        if args.export_format == "chrome":
            out = args.out or "trace.json"
            write_chrome_trace(machine.cost_records, out)
            print(f"\nwrote Chrome trace-event file to {out} "
                  "(load it at https://ui.perfetto.dev)")
        else:
            out = args.out or "trace.jsonl"
            write_jsonl(machine.cost_records, out)
            print(f"\nwrote {len(machine.cost_records)} records to {out}")
    return 0 if ok else 1


def run_chaos(argv: List[str]) -> int:
    """``python -m repro chaos``: the adversarial robustness gate.

    Runs every Section 8 algorithm under all winner policies, an
    adversarial winner search, and every shipped fault schedule
    (:mod:`repro.faults.harness`), plus the fault-tolerant sweep-runner
    demo (:mod:`repro.faults.sweep_demo`).  Exit code 0 iff everything
    survives.  See docs/ROBUSTNESS.md.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Run the Section 8 algorithms under adversarial winner policies "
            "and injected faults, and the sweep runner through crash / hang / "
            "corrupt-cache scenarios; report what survives."
        ),
    )
    parser.add_argument("--n", type=int, default=64, help="input size (default: 64)")
    parser.add_argument("--seed", type=int, default=0, help="input/schedule seed (default: 0)")
    parser.add_argument(
        "--budget", type=int, default=24,
        help="adversarial winner-search runs per algorithm (default: 24)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="self-check attempts per fault schedule (default: 3)",
    )
    parser.add_argument(
        "--only", default=None, metavar="SUBSTR",
        help="run only cases whose name contains SUBSTR (e.g. 'BSP', 'parity')",
    )
    parser.add_argument(
        "--skip-sweep-demo", action="store_true",
        help="skip the fault-tolerant sweep-runner demo",
    )
    parser.add_argument(
        "--net", action="store_true",
        help="also run the network chaos suite (real TCP workers behind a "
             "fault-injecting proxy; see docs/DISTRIBUTED.md)",
    )
    parser.add_argument(
        "--net-only", action="store_true",
        help="run only the network chaos suite",
    )
    parser.add_argument(
        "--net-points", type=int, default=6,
        help="points per network chaos case (default: 6)",
    )
    parser.add_argument(
        "--fault-log", default=None, metavar="PATH",
        help="append frame-level network fault verdicts to PATH (JSONL)",
    )
    args = parser.parse_args(argv)

    from repro.faults.harness import render_chaos_report, run_chaos_suite

    ok = True
    if not args.net_only:
        report = run_chaos_suite(
            n=args.n,
            seed=args.seed,
            budget=args.budget,
            max_attempts=args.max_attempts,
            only=args.only,
        )
        print(render_chaos_report(report))
        ok = report.ok

    if args.net or args.net_only:
        from repro.faults.net_harness import run_net_chaos_suite

        print("\nnetwork chaos (TCP fleet behind the fault proxy):")
        net_report = run_net_chaos_suite(
            points=args.net_points,
            fault_log=args.fault_log,
            only=args.only if args.net_only else None,
        )
        print(render_chaos_report(net_report))
        ok = ok and net_report.ok

    if not args.skip_sweep_demo and not args.net_only:
        from repro.faults.sweep_demo import run_sweep_demo

        print("\nsweep-runner fault demo (worker crash / hung point / torn cache):")
        summary = run_sweep_demo()
        for key, value in summary.items():
            print(f"  {key}: {value}")
        ok = ok and summary["survived"]

    print()
    print("CHAOS: " + ("all clear" if ok else "FAILURES — see above"))
    return 0 if ok else 1


def run_version() -> int:
    """``python -m repro version``: version plus the resolved phase engine.

    The second line surfaces what :func:`repro.core.engine_vector.resolve_engine`
    would pick for machines built in this process — including the silent-ish
    numpy fallback ("vector -> reference") that would otherwise only show as
    a one-time warning.
    """
    from repro import __version__
    from repro.core.engine_vector import ENGINE_ENV, have_numpy, resolve_engine
    import os
    import warnings

    print(__version__)
    requested = os.environ.get(ENGINE_ENV) or "reference"
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # version output stays clean
            resolved = resolve_engine()
    except ValueError as exc:
        print(f"engine: error ({exc})", file=sys.stderr)
        return 2
    detail = "numpy available" if have_numpy() else "numpy unavailable"
    if requested != resolved:
        print(f"engine: {resolved} (requested {requested!r}; {detail})")
    else:
        print(f"engine: {resolved} ({detail})")
    return 0


def _interval_value(text: str) -> float:
    """Argparse type for ``--interval``: a positive, finite second count."""
    import argparse
    import math

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a number of seconds, got {text!r}"
        ) from None
    if not value > 0 or math.isinf(value):
        raise argparse.ArgumentTypeError(
            f"must be a positive finite number of seconds, got {text}"
        )
    return value


def run_metrics(argv: List[str]) -> int:
    """``python -m repro metrics``: inspect the runtime metrics registry.

    ``dump`` prints the process-wide registry (:mod:`repro.obs.metrics`)
    as an aligned table — or, with ``--snapshots PATH``, the last
    :class:`~repro.obs.snapshot.MetricsSnapshot` of a JSONL stream
    written by ``campaign run --metrics``.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="Inspect the process-wide runtime metrics registry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("dump", help="print the registry (or a snapshot file) as a table")
    p.add_argument(
        "--snapshots", default=None, metavar="PATH",
        help="render the last snapshot of a metrics JSONL stream instead "
        "of this process's live registry",
    )
    args = parser.parse_args(argv)

    from repro.obs.metrics import REGISTRY, render_metrics_table

    if args.snapshots:
        from repro.obs.snapshot import read_snapshots

        try:
            snapshots = read_snapshots(args.snapshots)
        except OSError as exc:
            print(f"error: cannot read {args.snapshots}: {exc}", file=sys.stderr)
            return 2
        if not snapshots:
            print(f"no snapshots in {args.snapshots}", file=sys.stderr)
            return 1
        last = snapshots[-1]
        print(f"snapshot {last.seq} at t+{last.t_rel:.2f}s"
              + (" (final)" if last.final else ""))
        print(render_metrics_table(last.metrics))
        return 0
    if not REGISTRY.enabled:
        print("(metrics registry disabled — set REPRO_METRICS=1 or use "
              "campaign run --metrics)")
    print(render_metrics_table(REGISTRY.collect()))
    return 0


def run_bench(argv: List[str]) -> int:
    """``python -m repro bench check``: the bench-regression watchdog.

    Diffs current bench points against a committed ``BENCH_*.json``
    baseline with noise-aware, direction-aware relative tolerances
    (:mod:`repro.obs.regress`), prints a markdown report (``--report``
    also writes it to a file), and exits 0 clean / 1 on regression / 2 on
    usage errors.  The current side is ``--current PATH``, ``--store
    DIR`` (result-store outcomes), or — for the sched A/B, phase-engine
    and cross-model schemas — a fresh ``--samples K`` median-of-k
    re-measurement.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Guard the committed bench trajectory: diff current points "
            "against a baseline and fail on regression."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("check", help="diff current bench points against a baseline")
    p.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="committed BENCH_*.json to diff against",
    )
    p.add_argument(
        "--current", default=None, metavar="PATH",
        help="current BENCH_*.json (default: re-measure sched-, phase-engine- "
        "and cross-model-schema baselines; other schemas need --current or "
        "--store)",
    )
    p.add_argument(
        "--store", default=None, metavar="DIR",
        help="use a result store's outcomes as the current side",
    )
    p.add_argument(
        "--samples", type=int, default=1, metavar="K",
        help="median-of-K re-measurements when regenerating (default: 1)",
    )
    p.add_argument(
        "--tolerance", type=float, default=None, metavar="FRAC",
        help="relative tolerance for deterministic metrics (default: 0.01)",
    )
    p.add_argument(
        "--wall-tolerance", type=float, default=None, metavar="FRAC",
        help="relative tolerance for wall-clock ratio metrics (default: 0.6)",
    )
    p.add_argument(
        "--strict-wall", action="store_true",
        help="gate raw wall-clock metrics too (same-machine A/B use)",
    )
    p.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the markdown report to PATH",
    )
    args = parser.parse_args(argv)

    if args.samples < 1:
        print(f"error: --samples must be >= 1, got {args.samples}", file=sys.stderr)
        return 2

    from repro.obs.regress import (
        DEFAULT_TOLERANCE,
        DEFAULT_WALL_TOLERANCE,
        collect_sched_current,
        compare_bench,
        load_bench,
        store_outcome_metrics,
    )

    try:
        baseline = load_bench(args.baseline)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2

    if args.current is not None:
        try:
            current = load_bench(args.current)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read current: {exc}", file=sys.stderr)
            return 2
        current_source = args.current
    elif args.store is not None:
        from repro.sched.store import ResultStore

        current = store_outcome_metrics(ResultStore(args.store))
        current_source = f"store:{args.store}"
    elif "engines" in baseline:
        from repro.obs.regress import collect_phase_engine_current

        print(f"re-measuring the phase-engine bench ({args.samples} sample(s))...")
        try:
            current = collect_phase_engine_current(samples=args.samples)
        except ImportError:
            print(
                "error: the benchmarks tree is not importable here; pass "
                "--current PATH (run with PYTHONPATH=src:. to re-measure)",
                file=sys.stderr,
            )
            return 2
        current_source = f"bench_phase_engine.collect() median-of-{args.samples}"
    elif "cells" in baseline:
        from repro.obs.regress import collect_cross_model_current

        print(f"re-measuring the cross-model bench ({args.samples} sample(s))...")
        try:
            current = collect_cross_model_current(samples=args.samples)
        except ImportError:
            print(
                "error: the benchmarks tree is not importable here; pass "
                "--current PATH (run with PYTHONPATH=src:. to re-measure)",
                file=sys.stderr,
            )
            return 2
        current_source = f"bench_cross_model.collect() median-of-{args.samples}"
    elif "timings" in baseline or "throughput" in baseline:
        print(f"re-measuring the sched bench ({args.samples} sample(s))...")
        try:
            current = collect_sched_current(samples=args.samples)
        except ImportError:
            print(
                "error: the benchmarks tree is not importable here; pass "
                "--current PATH (run with PYTHONPATH=src:. to re-measure)",
                file=sys.stderr,
            )
            return 2
        current_source = f"bench_sched.collect() median-of-{args.samples}"
    else:
        print(
            "error: this baseline schema cannot be re-measured automatically; "
            "pass --current PATH or --store DIR",
            file=sys.stderr,
        )
        return 2

    try:
        report = compare_bench(
            baseline,
            current,
            tolerance=DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance,
            wall_tolerance=(
                DEFAULT_WALL_TOLERANCE if args.wall_tolerance is None
                else args.wall_tolerance
            ),
            strict_wall=args.strict_wall,
            baseline_source=args.baseline,
            current_source=current_source,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    markdown = report.render_markdown()
    print(markdown)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(markdown)
        print(f"wrote {args.report}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path and not report.ok:
        # A failed gate surfaces its full diff table on the Actions run
        # summary page, so nobody has to dig through step logs for the
        # regressing metric.
        try:
            with open(summary_path, "a", encoding="utf-8") as fh:
                fh.write(f"## bench check failed: {args.baseline}\n\n")
                fh.write(markdown)
                fh.write("\n")
        except OSError as exc:
            print(f"warning: cannot write GITHUB_STEP_SUMMARY: {exc}",
                  file=sys.stderr)
    return 0 if report.ok else 1


#: How long ``campaign status --follow`` waits for the snapshot file to
#: appear before giving up (overridable with ``--wait``).
DEFAULT_FOLLOW_WAIT = 30.0


def _follow_metrics(
    path: str,
    follow: bool,
    interval: Optional[float],
    wait: Optional[float] = None,
) -> int:
    """Render a campaign's metrics-snapshot stream as live status lines.

    Reads only the JSONL file the scheduler writes (``campaign run
    --metrics``) — never attaches to the scheduler or worker processes.
    With ``follow=True`` polls until the stream's ``final`` snapshot
    appears; otherwise prints whatever is there and returns.

    A follow may legitimately start before the file exists — ``python -m
    repro serve`` hands tenants a snapshot path as soon as the service
    boots, before the first emit — so the not-yet-created phase is a
    bounded wait-and-retry (``wait`` seconds, default
    :data:`DEFAULT_FOLLOW_WAIT`) instead of an immediate error.  Once
    the first snapshot lands, following is unbounded (the stream ends
    with its ``final`` snapshot).
    """
    import time

    from repro.obs.snapshot import default_interval, live_status_line, read_snapshots

    poll = default_interval() if interval is None else interval
    deadline_s = DEFAULT_FOLLOW_WAIT if wait is None else wait
    deadline = time.monotonic() + deadline_s
    printed = 0
    announced_wait = False
    while True:
        try:
            snapshots = read_snapshots(path)
        except OSError:
            snapshots = []
        for snap in snapshots[printed:]:
            print(live_status_line(snap))
        printed = len(snapshots)
        if snapshots and snapshots[-1].final:
            return 0
        if not follow:
            if not printed:
                print(f"no metrics snapshots at {path} (start the campaign "
                      "with --metrics)", file=sys.stderr)
                return 1
            return 0
        if not printed:
            if time.monotonic() >= deadline:
                print(
                    f"gave up waiting for {path} after {deadline_s:.0f}s "
                    "(start the campaign with --metrics, or raise --wait)",
                    file=sys.stderr,
                )
                return 1
            if not announced_wait:
                announced_wait = True
                print(f"waiting for {path} ...", file=sys.stderr)
        time.sleep(poll)


def run_campaign_cli(argv: List[str]) -> int:
    """``python -m repro campaign``: drive the campaign scheduler.

    Subcommands: ``run`` (execute, resuming from the store), ``resume``
    (alias of ``run`` — resumption is the default semantics), ``status``
    (per-task done/pending against the store), ``prune`` (store GC) and
    ``list`` (available campaigns).  See docs/SCHEDULER.md.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Execute declarative task campaigns (Table 1, Section 8, the "
            "chaos gate, the cross-model table, a demo) on a warm worker "
            "pool with a "
            "content-addressed result store."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store(p: "argparse.ArgumentParser") -> None:
        from repro.sched.store import STORE_ENV

        p.add_argument(
            "--store", default=None, metavar="DIR",
            help=f"result-store directory (default: ${STORE_ENV} or .repro-store)",
        )

    def add_campaign_args(p: "argparse.ArgumentParser") -> None:
        p.add_argument(
            "name", nargs="?", default=None,
            help="campaign name (demo, table1, section8, chaos, cross_model)",
        )
        p.add_argument(
            "--demo", action="store_true",
            help="shorthand for the 'demo' campaign",
        )
        p.add_argument(
            "--points", type=int, default=8,
            help="demo campaign: number of point tasks (default: 8)",
        )
        p.add_argument(
            "--delay", type=float, default=0.05,
            help="demo campaign: per-task sleep in seconds (default: 0.05)",
        )
        add_store(p)

    for cmd, doc in (
        ("run", "execute a campaign (tasks already in the store are skipped)"),
        ("resume", "alias of run: resumption from the store is the default"),
    ):
        p = sub.add_parser(cmd, help=doc)
        add_campaign_args(p)
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write the Chrome trace (scheduler spans + metrics counter "
            "lanes + per-task phase rows; Perfetto) on completion",
        )
        p.add_argument(
            "--metrics", nargs="?", const="auto", default=None, metavar="PATH",
            help="stream metrics snapshots to a JSONL file while running "
            "(default PATH: <store>/metrics.jsonl); `campaign status "
            "--follow` tails it",
        )
        p.add_argument(
            "--interval", type=_interval_value, default=None, metavar="SECONDS",
            help="snapshot cadence for --metrics "
            "(default: $REPRO_METRICS_INTERVAL or 1.0)",
        )
        p.add_argument(
            "--quiet", action="store_true", help="suppress per-task progress lines"
        )

    p = sub.add_parser("status", help="per-task resume status against the store")
    add_campaign_args(p)
    p.add_argument(
        "--follow", action="store_true",
        help="tail a running campaign's metrics snapshots as live progress "
        "lines (stops at the final snapshot)",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="metrics JSONL stream to read (default: <store>/metrics.jsonl)",
    )
    p.add_argument(
        "--interval", type=_interval_value, default=None, metavar="SECONDS",
        help="--follow poll cadence (default: $REPRO_METRICS_INTERVAL or 1.0)",
    )
    p.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="--follow: how long to wait for a not-yet-created snapshot "
        f"file before giving up (default: {DEFAULT_FOLLOW_WAIT:.0f})",
    )

    p = sub.add_parser("prune", help="garbage-collect the result store")
    add_store(p)
    p.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="prune entries older than DAYS days (default: prune everything)",
    )
    p.add_argument(
        "--dry-run", action="store_true", help="report what would be pruned only"
    )

    sub.add_parser("list", help="list the available campaigns")

    args = parser.parse_args(argv)

    from repro.sched.store import STORE_ENV, ResultStore

    def store_for(ns: "argparse.Namespace") -> ResultStore:
        root = ns.store or os.environ.get(STORE_ENV) or ".repro-store"
        return ResultStore(root)

    if args.command == "list":
        from repro.sched.campaigns import CAMPAIGNS

        for name, builder in sorted(CAMPAIGNS.items()):
            doc = (builder.__doc__ or "").strip().splitlines()[0]
            print(f"{name:10s} {doc}")
        return 0

    if args.command == "prune":
        store = store_for(args)
        older = None if args.older_than is None else args.older_than * 86400.0
        before = store.stats()
        pruned = store.prune(older_than_s=older, dry_run=args.dry_run)
        verb = "would prune" if args.dry_run else "pruned"
        print(
            f"{verb} {len(pruned)} of {before.entries} entries "
            f"({before.quarantined} quarantined) from {store.root}"
        )
        return 0

    from repro.sched.campaigns import build_campaign

    # A snapshot stream is self-describing, so following one needs no
    # campaign definition — only a path (explicit or the store default).
    if args.command == "status" and (args.follow or args.metrics):
        store = store_for(args)
        metrics_path = args.metrics or os.path.join(store.root, "metrics.jsonl")
        return _follow_metrics(
            metrics_path, follow=args.follow, interval=args.interval,
            wait=args.wait,
        )

    name = "demo" if args.demo else args.name
    if name is None:
        parser.error(f"{args.command} needs a campaign name (or --demo)")
    opts = {"points": args.points, "delay": args.delay} if name == "demo" else {}
    try:
        campaign = build_campaign(name, **opts)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = store_for(args)

    if args.command == "status":
        from repro.sched.campaign import campaign_status

        rows = campaign_status(campaign, store)
        done = sum(1 for _, s in rows if s == "done")
        stored = sum(1 for _, s in rows if s != "inline")
        for task_name, state in rows:
            print(f"{state:8s} {task_name}")
        stats = store.stats()
        print(
            f"\ncampaign {campaign.name}: {done}/{stored} stored task(s) done; "
            f"store {store.root}: {stats.entries} entries, {stats.bytes} bytes"
            + (f", {stats.quarantined} quarantined" if stats.quarantined else "")
        )
        return 0

    # run / resume
    from repro.sched.campaign import run_campaign

    metrics_path = args.metrics
    if metrics_path == "auto":
        metrics_path = os.path.join(store.root, "metrics.jsonl")
    report = run_campaign(
        campaign,
        store,
        progress=None if args.quiet else print,
        trace_path=args.trace,
        metrics_path=metrics_path,
        metrics_interval=args.interval,
    )
    print(report.render())
    if args.trace:
        print(f"wrote campaign trace to {args.trace} "
              "(load it at https://ui.perfetto.dev)")
    if metrics_path:
        print(f"wrote metrics snapshots to {metrics_path} "
              f"(watch live with `python -m repro campaign status --follow "
              f"--metrics {metrics_path}`)")
    if report.cancelled:
        print(f"re-run `python -m repro campaign run {name}` to resume")
        return 130
    return 0 if report.ok else 1


def run_serve(argv: List[str]) -> int:
    """``python -m repro serve``: the multi-tenant campaign service.

    Subcommands: ``run`` (boot the HTTP service), ``submit`` (POST a
    campaign as a tenant, optionally watching it to completion),
    ``watch`` (attach to a job's SSE stream) and ``campaigns`` (list
    what the server accepts).  See docs/SERVICE.md for the wire
    contracts and a curl walkthrough.
    """
    import argparse
    import json as _json

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve campaign submissions over HTTP: many tenants, one warm "
            "worker pool, fair-share queueing, content-addressed dedup, "
            "and an SSE live dashboard."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_url(p: "argparse.ArgumentParser") -> None:
        p.add_argument(
            "--url", default="http://127.0.0.1:8023",
            help="service base URL (default: http://127.0.0.1:8023)",
        )
        p.add_argument(
            "--tenant", default=None,
            help="tenant name sent as X-Repro-Tenant (default: anonymous)",
        )

    p = sub.add_parser("run", help="boot the service")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port", type=int, default=8023,
        help="bind port (default: 8023; 0 picks an ephemeral port)",
    )
    from repro.sched.store import STORE_ENV

    p.add_argument(
        "--store", default=None, metavar="DIR",
        help=f"result-store directory (default: ${STORE_ENV} or .repro-store)",
    )
    p.add_argument(
        "--interval", type=_interval_value, default=None, metavar="SECONDS",
        help="SSE snapshot cadence (default: $REPRO_METRICS_INTERVAL or 1.0)",
    )
    p.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="also append snapshots to a JSONL file (`campaign status "
        "--follow --metrics PATH` tails it, waiting for it to appear)",
    )
    p.add_argument(
        "--max-jobs", type=int, default=4, metavar="N",
        help="per-tenant concurrent job quota (default: 4)",
    )
    p.add_argument(
        "--max-tasks-in-flight", type=int, default=None, metavar="N",
        help="per-tenant cap on pool tasks held at once (default: none)",
    )
    p.add_argument(
        "--max-tasks-per-job", type=int, default=4096, metavar="N",
        help="largest admissible campaign (default: 4096 tasks)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress lines"
    )
    p.add_argument(
        "--workers-port", type=int, default=None, metavar="PORT",
        help="listen for TCP workers instead of spawning local pipe workers "
        "(0 picks an ephemeral port; join with `python -m repro worker`)",
    )
    p.add_argument(
        "--workers-host", default="127.0.0.1", metavar="HOST",
        help="bind address for the worker fabric (default: 127.0.0.1)",
    )
    p.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable distributed tracing and append repro.trace/1 spans "
        "to PATH (also enabled by REPRO_TRACE=1; see docs/OBSERVABILITY.md)",
    )

    p = sub.add_parser("submit", help="submit a campaign to a running service")
    p.add_argument("name", help="campaign name (see `serve campaigns`)")
    add_url(p)
    p.add_argument(
        "--points", type=int, default=None,
        help="demo campaign: number of point tasks",
    )
    p.add_argument(
        "--delay", type=float, default=None,
        help="demo campaign: per-task sleep in seconds",
    )
    p.add_argument(
        "--option", action="append", default=[], metavar="KEY=VALUE",
        help="generic campaign option (repeatable; values parsed as JSON)",
    )
    p.add_argument(
        "--watch", action="store_true",
        help="stream the job to completion and exit 0 only if it finished",
    )
    p.add_argument(
        "--cancel-on-disconnect", action="store_true",
        help="with --watch: cancel the job if this client disconnects",
    )

    p = sub.add_parser("watch", help="attach to a job's SSE stream")
    p.add_argument("job", help="job id, e.g. job-0001")
    add_url(p)
    p.add_argument(
        "--cancel-on-disconnect", action="store_true",
        help="cancel the job if this client disconnects",
    )

    p = sub.add_parser("campaigns", help="list the submittable campaigns")
    add_url(p)

    p = sub.add_parser("workers", help="show the service's worker fleet")
    add_url(p)

    p = sub.add_parser("slo", help="print the service's percentile latency SLOs")
    add_url(p)

    args = parser.parse_args(argv)

    if args.command == "run":
        from repro.sched.tenancy import TenantQuota
        from repro.serve.http import create_server, serve_forever
        from repro.serve.service import CampaignService

        store_root = args.store or os.environ.get(STORE_ENV) or ".repro-store"
        try:
            quota = TenantQuota(
                max_jobs=args.max_jobs,
                max_tasks_in_flight=args.max_tasks_in_flight,
                max_tasks_per_job=args.max_tasks_per_job,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        from repro.obs import tracing as _tracing

        if args.trace:
            _tracing.enable_tracing(path=args.trace)
            print(f"tracing to {args.trace} (repro.trace/1; merge with "
                  f"`python -m repro trace merge {args.trace} --out trace.json`)")
        elif _tracing.TRACER.enabled:
            print("tracing enabled via REPRO_TRACE "
                  "(pass --trace PATH to capture spans to a file)")
        service = CampaignService(
            store_root,
            quota=quota,
            snapshot_interval=args.interval,
            metrics_path=args.metrics,
            progress=None if args.quiet else print,
            workers_port=args.workers_port,
            workers_host=args.workers_host,
        )
        server = create_server(
            service, host=args.host, port=args.port,
            log=None if args.quiet else (lambda line: print(line, file=sys.stderr)),
        )
        host, port = server.server_address[:2]
        print(f"serving on http://{host}:{port} (store {store_root}; "
              f"dashboard at /, contracts repro.serve/1)")
        if args.workers_port is not None:
            whost, wport = service.mux.pool.address
            print(f"worker fabric on {whost}:{wport} (join with "
                  f"`python -m repro worker {whost} {wport}`)")
        if args.metrics:
            print(f"streaming snapshots to {args.metrics} (tail with "
                  f"`python -m repro campaign status --follow "
                  f"--metrics {args.metrics}`)")
        try:
            serve_forever(server)
        except KeyboardInterrupt:
            print("\nshutting down (queued/running jobs stay resumable)")
        return 0

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url, tenant=args.tenant)

    try:
        if args.command == "campaigns":
            for entry in client.campaigns():
                opts = ", ".join(
                    f"{o['name']}={o['default']}" for o in entry["options"]
                ) or "-"
                print(f"{entry['name']:10s} {entry['summary']}  [{opts}]")
            return 0

        if args.command == "slo":
            slo = client.slo()
            if not slo.get("enabled"):
                print("tracing is off on this service (start it with "
                      "REPRO_TRACE=1 or --trace PATH); no SLO data")
                return 0
            print(_format_slo(slo))
            return 0

        if args.command == "workers":
            view = client.workers()
            listen = view.get("listen")
            if listen:
                print(f"worker fabric listening on {listen} "
                      f"({view['live']} live)")
            else:
                print(f"local pipe pool ({view['live']} live)")
            for row in view["workers"]:
                latency = row.get("heartbeat_latency_s")
                beat = f"{latency * 1000:.1f}ms" if latency is not None else "-"
                current = row.get("current") or "-"
                print(f"  {row['name']:20s} {row['state']:8s} "
                      f"gen={row['generation']} done={row['tasks_done']} "
                      f"beat={beat} task={current}")
            return 0

        if args.command == "submit":
            options: dict = {}
            for pair in args.option:
                key, sep, value = pair.partition("=")
                if not sep:
                    print(f"error: --option needs KEY=VALUE, got {pair!r}",
                          file=sys.stderr)
                    return 2
                try:
                    options[key] = _json.loads(value)
                except ValueError:
                    options[key] = value
            if args.points is not None:
                options["points"] = args.points
            if args.delay is not None:
                options["delay"] = args.delay
            job = client.submit(args.name, options)
            print(f"submitted {job['id']} ({job['campaign']}, "
                  f"tenant {job['tenant']}, {job['tasks']} tasks)")
            if not args.watch:
                print(_json.dumps(job, indent=2, sort_keys=True))
                return 0
            final = _watch_job(client, job["id"], args.cancel_on_disconnect)
            print(_json.dumps(final, indent=2, sort_keys=True))
            return 0 if final.get("state") == "done" else 1

        # watch
        final = _watch_job(client, args.job, args.cancel_on_disconnect)
        print(_json.dumps(final, indent=2, sort_keys=True))
        return 0 if final.get("state") == "done" else 1
    except ServeError as exc:
        print(f"error ({exc.code}): {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


def run_worker_cli(argv: List[str]) -> int:
    """``python -m repro worker``: join a scheduler's TCP worker fabric.

    Dials the scheduler (``serve run --workers-port`` or a bare
    :class:`~repro.sched.net.pool.RemoteWorkerPool`), registers under a
    stable name, and serves tasks until stopped, evicted, or out of
    reconnect budget.  See docs/DISTRIBUTED.md for the protocol and the
    exit-code contract.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description=(
            "Run one TCP worker: register with a scheduler, execute tasks, "
            "answer heartbeats, redial with backoff when the link drops."
        ),
    )
    parser.add_argument("host", help="scheduler address")
    parser.add_argument("port", type=int, help="scheduler worker port")
    parser.add_argument(
        "--name", default=None,
        help="stable worker identity (default: <hostname>-<pid>); reusing "
        "a name bumps its generation and evicts the older connection",
    )
    parser.add_argument(
        "--no-reconnect", action="store_true",
        help="exit on a lost connection instead of redialling",
    )
    parser.add_argument(
        "--max-reconnects", type=int, default=None, metavar="N",
        help="bound redial attempts (default: unbounded)",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-dial connect/registration timeout (default: 5.0)",
    )
    args = parser.parse_args(argv)

    from repro.sched.net.worker import run_worker

    return run_worker(
        args.host,
        args.port,
        name=args.name,
        reconnect=not args.no_reconnect,
        max_reconnects=args.max_reconnects,
        connect_timeout=args.connect_timeout,
    )


def _format_slo(slo: dict) -> str:
    """One status line from a ``GET /v1/slo`` payload body."""
    def bucket(b: dict) -> str:
        if not b.get("count"):
            return "no samples"
        return (f"p50={b['p50']:.3f}s p95={b['p95']:.3f}s "
                f"p99={b['p99']:.3f}s (n={b['count']})")

    task = slo.get("task", {})
    e2e = slo.get("end_to_end", {})
    return f"slo: task {bucket(task)} | end-to-end {bucket(e2e)}"


def _watch_job(client, job_id: str, cancel_on_disconnect: bool) -> dict:
    """Stream a job's SSE events, printing state changes; returns the final view.

    On traced services the terminal line is followed by the job's
    ``trace_id`` and the service's current percentile SLOs.
    """
    last_line = None
    view = client.job(job_id)
    for envelope in client.watch(job_id, cancel_on_disconnect=cancel_on_disconnect):
        view = envelope["job"]
        counts = " ".join(f"{k}:{v}" for k, v in sorted(view["counts"].items()))
        line = f"{view['id']} {view['state']}  {counts}"
        if line != last_line:
            print(line)
            last_line = line
    if view.get("trace_id"):
        print(f"trace: {view['trace_id']}")
        try:
            slo = client.slo()
            if slo.get("enabled"):
                print(_format_slo(slo))
        except Exception:
            pass  # an old server without /v1/slo; the watch still succeeded
    return view


def parse_jobs(argv: List[str]) -> Tuple[List[str], Optional[int]]:
    """Strip ``--jobs N`` / ``--jobs=N`` from ``argv``; return (rest, jobs)."""
    rest: List[str] = []
    jobs: Optional[int] = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--jobs":
            if i + 1 >= len(argv):
                raise SystemExit("--jobs needs a value, e.g. --jobs 4")
            value = argv[i + 1]
            i += 2
        elif arg.startswith("--jobs="):
            value = arg.split("=", 1)[1]
            i += 1
        else:
            rest.append(arg)
            i += 1
            continue
        try:
            jobs = int(value)
        except ValueError:
            raise SystemExit(f"--jobs needs an integer, got {value!r}")
        if jobs < 1:
            raise SystemExit(f"--jobs must be >= 1, got {jobs}")
    return rest, jobs


def _validate_jobs_env() -> None:
    """Reject a malformed ``REPRO_JOBS`` up front, argparse-style (exit 2).

    The library's :func:`repro.analysis.parallel_sweep.default_jobs` keeps
    its lenient fallback (a bad value degrades to the CPU count) so
    programmatic use never explodes mid-sweep; the CLI is where a typo'd
    environment should be caught loudly instead of silently ignored.
    """
    env = os.environ.get("REPRO_JOBS")
    if env is None or not env.strip():
        return
    try:
        value = int(env)
    except ValueError:
        print(
            f"error: REPRO_JOBS must be an integer >= 1, got {env!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if value < 1:
        print(f"error: REPRO_JOBS must be >= 1, got {value}", file=sys.stderr)
        raise SystemExit(2)


def _validate_metrics_interval_env() -> None:
    """Reject a malformed ``REPRO_METRICS_INTERVAL`` up front (exit 2).

    Same split as ``REPRO_JOBS``: the library's
    :func:`repro.obs.snapshot.default_interval` stays lenient (a bad value
    degrades to the 1.0s default), the CLI catches the typo loudly.
    """
    import math

    env = os.environ.get("REPRO_METRICS_INTERVAL")
    if env is None or not env.strip():
        return
    try:
        value = float(env)
    except ValueError:
        print(
            "error: REPRO_METRICS_INTERVAL must be a positive number of "
            f"seconds, got {env!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if not value > 0 or math.isinf(value):
        print(
            "error: REPRO_METRICS_INTERVAL must be a positive finite number "
            f"of seconds, got {env!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    argv, jobs = parse_jobs(argv)
    if jobs is None:
        _validate_jobs_env()  # an explicit --jobs overrides the environment
    _validate_metrics_interval_env()  # --interval overrides it per command
    if jobs is not None:
        # parallel_sweep's default_jobs() reads this, so one flag fans out
        # to every sweep in the run (including ones in worker processes).
        os.environ["REPRO_JOBS"] = str(jobs)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        print("experiments:", ", ".join(EXPERIMENTS), "(default: all)")
        print("other commands: trace (cost-provenance inspection; trace --help), "
              "chaos (fault-injection gate; chaos --help), "
              "campaign (scheduler; campaign --help), "
              "serve (multi-tenant campaign service; serve --help), "
              "worker (join a TCP worker fabric; worker --help), "
              "metrics (registry/snapshot dump; metrics --help), "
              "bench (regression watchdog; bench --help), version")
        return 0
    if argv and argv[0] in ("version", "--version", "-V"):
        return run_version()
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    if argv and argv[0] == "chaos":
        return run_chaos(argv[1:])
    if argv and argv[0] == "metrics":
        return run_metrics(argv[1:])
    if argv and argv[0] == "bench":
        return run_bench(argv[1:])
    if argv and argv[0] == "campaign":
        return run_campaign_cli(argv[1:])
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "worker":
        return run_worker_cli(argv[1:])
    chosen = argv or list(EXPERIMENTS)
    unknown = [a for a in chosen if a not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; know {list(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for i, name in enumerate(chosen):
        if i:
            print("\n" + "=" * 78 + "\n")
        print(f"### experiment {name}\n")
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
