"""Chromatic Load Balancing (Section 6) and the Theorem 6.1 reductions.

**CLB**: an ``n x 4m`` input array holds ``n`` groups of ``4m`` objects;
every group is independently assigned a uniform color from a palette of
``8m``.  A solution picks any color ``q`` and distributes *all* objects of
color ``q`` into an ``n x m`` output array (groups of at most ``m``; output
grouping need not respect input grouping).

**ECLB** (enhanced): additionally, every input cell of the chosen color must
hold a pointer to its object's destination row.  Claim 6.1: a CLB solution
yields an ECLB solution in ``m`` extra GSM steps — implemented by
:func:`eclb_from_clb`, which charges those steps on the machine.

**Theorem 6.1 reductions** (run forward as algorithms): CLB solves via a
Load-Balancing solver, an h-LAC solver, or a Padded-Sort solver, each with
the bookkeeping the proof describes.  Their executability is what transfers
the CLB lower bound of Lemma 6.2 to those three problems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.algorithms.compaction import lac_dart
from repro.algorithms.load_balance import load_balance
from repro.algorithms.padded_sort import padded_sort
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM
from repro.util.seeding import RngLike, derive_rng

__all__ = [
    "CLBInstance",
    "gen_clb",
    "verify_clb",
    "eclb_from_clb",
    "clb_via_load_balance",
    "clb_via_lac",
    "clb_via_padded_sort",
]


@dataclass(frozen=True)
class CLBInstance:
    """One CLB input: group colors plus tagged objects.

    ``colors[i]`` is group i's color (0..8m-1); the objects of group i are
    the tags ``(i, 0) .. (i, 4m-1)`` per the paper's WLOG tagging.
    """

    n: int
    m: int
    colors: Tuple[int, ...]

    @property
    def palette(self) -> int:
        return 8 * self.m

    def objects_of_color(self, q: int) -> List[Tuple[int, int]]:
        return [
            (i, r)
            for i in range(self.n)
            if self.colors[i] == q
            for r in range(4 * self.m)
        ]


def gen_clb(n: int, m: int, seed: RngLike = None) -> CLBInstance:
    """Random CLB instance: each group color uniform over 8m."""
    if n < 1 or m < 1:
        raise ValueError(f"need n, m >= 1; got n={n}, m={m}")
    rng = derive_rng(seed)
    colors = tuple(int(c) for c in rng.integers(0, 8 * m, size=n))
    return CLBInstance(n=n, m=m, colors=colors)


def verify_clb(
    instance: CLBInstance,
    chosen_color: int,
    output_groups: Sequence[Sequence[Tuple[int, int]]],
) -> bool:
    """Check the CLB contract: n output groups of <= m objects covering
    exactly the objects of the chosen color."""
    if not 0 <= chosen_color < instance.palette:
        return False
    if len(output_groups) != instance.n:
        return False
    if any(len(grp) > instance.m for grp in output_groups):
        return False
    want = sorted(instance.objects_of_color(chosen_color))
    got = sorted(obj for grp in output_groups for obj in grp)
    return want == got


def eclb_from_clb(
    machine: GSM,
    instance: CLBInstance,
    chosen_color: int,
    output_groups: Sequence[Sequence[Tuple[int, int]]],
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Claim 6.1: pointers from input cells to destination rows, in m steps.

    One processor per destination row walks its (at most m) objects, writing
    each object's row number into the input array at the object's original
    (group, rank) cell — ``m`` phases, each with ``m_rw = 1`` per processor
    and contention 1.  Returns the pointer map ``{(group, rank): row}``.
    """
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    n, m = instance.n, instance.m
    input_base = alloc.alloc(n * 4 * m)
    pointers: Dict[Tuple[int, int], int] = {}
    for step in range(m):
        with machine.phase() as ph:
            for row, grp in enumerate(output_groups):
                if step < len(grp):
                    group, rank = grp[step]
                    ph.write(row, input_base + group * 4 * m + rank, row)
                    pointers[(group, rank)] = row
    return meter.result(pointers, steps=m)


def _pack_groups(objects: Sequence[Tuple[int, int]], n: int, m: int) -> List[List[Tuple[int, int]]]:
    """Greedy packing of <= n*m objects into n groups of <= m (local)."""
    groups: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for idx, obj in enumerate(objects):
        groups[idx // m].append(obj)
    return groups


def clb_via_load_balance(
    machine,
    instance: CLBInstance,
    chosen_color: int = 0,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Theorem 6.1, Load-Balancing arm.

    The objects of the chosen color start at their groups' processors (one
    processor per input row); the Load-Balancing solver redistributes them
    to O(1 + h/n) per processor; each processor then claims destination
    groups for its quota.  Fails (per the proof, with small probability)
    only if some processor ends with more than m objects.
    """
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    n, m = instance.n, instance.m
    loads: List[List[Tuple[int, int]]] = [
        [(i, r) for r in range(4 * m)] if instance.colors[i] == chosen_color else []
        for i in range(n)
    ]
    lb = load_balance(machine, loads, alloc=alloc)
    per_proc = lb.value
    if any(len(objs) > m for objs in per_proc):
        return meter.result(None, failed=True, reason="processor exceeded m objects")
    # Each processor j owns destination group j.
    groups = [list(objs) for objs in per_proc]
    ok = verify_clb(instance, chosen_color, groups)
    return meter.result(groups if ok else None, failed=not ok)


def clb_via_lac(
    machine,
    instance: CLBInstance,
    chosen_color: int = 0,
    seed: RngLike = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Theorem 6.1, LAC arm.

    An *item* is a whole group of the chosen color (4m objects).  The items
    sit sparsely in an n-cell array; the LAC solver compacts them into O(h)
    cells with ``h = n / 4m``; compacted item k then claims destination
    groups ``4k .. 4k+3`` (4m objects over 4 groups of m).
    """
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    n, m = instance.n, instance.m
    h = max(1, n // (4 * m))
    sparse: List[Optional[int]] = [
        i if instance.colors[i] == chosen_color else None for i in range(n)
    ]
    count = sum(1 for v in sparse if v is not None)
    if count > h:
        return meter.result(None, failed=True, reason=f"{count} items exceed h={h}")
    lac = lac_dart(machine, sparse, h=h, seed=seed, alloc=alloc)
    compacted = [v for v in lac.value if v is not None]
    groups: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for k, group_idx in enumerate(compacted):
        for r in range(4 * m):
            dest = 4 * k + r // m
            if dest >= n:
                return meter.result(None, failed=True, reason="destination overflow")
            groups[dest].append((group_idx, r))
    ok = verify_clb(instance, chosen_color, groups)
    return meter.result(groups if ok else None, failed=not ok, h=h)


def clb_via_padded_sort(
    machine,
    instance: CLBInstance,
    seed: RngLike = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Theorem 6.1, Padded-Sort arm.

    Each group with color ``i`` draws a uniform real from
    ``(i/8m, (i+1)/8m]``; padded-sorting those reals clusters every color
    into a contiguous run of the output.  The decode then picks a color
    whose run maps to at most m objects per destination group (the proof
    guarantees one exists w.h.p.) and assigns objects round-robin.
    """
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    rng = derive_rng(seed)
    n, m = instance.n, instance.m
    palette = instance.palette
    keys = []
    for i in range(n):
        c = instance.colors[i]
        keys.append((c + 1 - float(rng.random())) / palette)  # in (c/8m, (c+1)/8m]
    ps = padded_sort(machine, keys, seed=rng, alloc=alloc)
    out = ps.value
    kn = len(out)
    # Decode: for each color, collect the sorted positions of its groups.
    key_to_group = {}
    for i, key in enumerate(keys):
        key_to_group[key] = i
    positions_by_color: Dict[int, List[Tuple[int, int]]] = {}
    for pos, v in enumerate(out):
        if v is None:
            continue
        grp = key_to_group[v]
        positions_by_color.setdefault(instance.colors[grp], []).append((pos, grp))
    # Pick the color with the fewest groups (<= m per destination for sure
    # when count*4m <= n*m i.e. count <= n/4).
    best_color = None
    for color, entries in sorted(positions_by_color.items()):
        if len(entries) * 4 <= n:
            best_color = color
            break
    if best_color is None:
        return meter.result(None, failed=True, reason="every color too popular")
    chosen_groups = [grp for _, grp in sorted(positions_by_color[best_color])]
    objects = [(grp, r) for grp in chosen_groups for r in range(4 * m)]
    groups = _pack_groups(objects, n, m)
    ok = verify_clb(instance, best_color, groups)
    return meter.result(
        (best_color, groups) if ok else None, failed=not ok, color=best_color
    )
