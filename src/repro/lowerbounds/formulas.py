"""Every lower-bound formula of the paper, as plain functions.

Layout follows the paper:

* **GSM theorems** (Sections 3, 6, 7) — functions of ``(n, alpha, beta,
  gamma)`` (+ ``p`` for rounds bounds).  These are the statements the paper
  actually proves.
* **Per-model corollaries** — the Table 1 entries, stated directly in the
  model's parameters, exactly as printed in the four sub-tables.  Where the
  table entry was derived through Claim 2.1, the tests check our direct
  form against the mapped GSM form.
* **Registry** — :data:`ALL_BOUNDS` lists one :class:`Bound` per table cell
  (problem x model x deterministic/randomized x time/rounds) with the
  formula text as printed; the bench harness iterates this to regenerate
  Table 1.
* **Post-1998 models** (tables ``"mpc"`` / ``"pem"``) — matching bounds for
  the machines in :mod:`repro.models`: the Roughgarden–Vassilvitskii–Wang
  ``Omega(log_s n)`` MPC round bound for any function depending on all
  inputs (with the conditional ``Omega(log n)`` list-ranking bound of the
  one-cycle-vs-two-cycles conjecture studied by Charikar–Ma–Tan), and the
  PEM I/O bounds of Arge–Goodrich–Nelson–Sitchinava /
  Jacob–Lieber–Sitchinava.  ``benchmarks/bench_cross_model.py`` reads these
  for the MPC/PEM rows of its cross-model Table 1.

All formulas return *values of the asymptotic expression with the hidden
constant set to 1* and with ``log`` clamped to ``>= 1``
(:mod:`repro.util.mathfn` conventions).  Benches fit a single constant per
family; dominance and shape are what is checked, per DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.util.mathfn import log2p, log_base, log_star, log_star_base, loglog2p

__all__ = [
    "Bound",
    "ALL_BOUNDS",
    "bounds_for",
    # GSM theorems
    "gsm_parity_det_time",
    "gsm_parity_rand_time",
    "gsm_lac_det_time",
    "gsm_lac_rand_time",
    "gsm_or_det_time",
    "gsm_or_rand_time",
    "gsm_or_rounds",
    "gsm_lac_rounds",
    # QSM time (Table 1a)
    "qsm_lac_det_time",
    "qsm_lac_rand_time",
    "qsm_lac_rand_time_nproc",
    "qsm_or_det_time",
    "qsm_or_rand_time",
    "qsm_parity_det_time",
    "qsm_parity_det_time_concurrent_reads",
    "qsm_parity_rand_time",
    # s-QSM time (Table 1b)
    "sqsm_lac_det_time",
    "sqsm_lac_rand_time",
    "sqsm_or_det_time",
    "sqsm_or_rand_time",
    "sqsm_parity_det_time",
    "sqsm_parity_rand_time",
    # BSP time (Table 1c)
    "bsp_lac_det_time",
    "bsp_lac_rand_time",
    "bsp_or_det_time",
    "bsp_or_rand_time",
    "bsp_parity_det_time",
    "bsp_parity_rand_time",
    # Rounds (Table 1d)
    "qsm_lac_rounds",
    "sqsm_lac_rounds",
    "bsp_lac_rounds",
    "qsm_or_rounds",
    "sqsm_or_rounds",
    "bsp_or_rounds",
    "qsm_parity_rounds",
    "sqsm_parity_rounds",
    "bsp_parity_rounds",
    # Broadcasting (related-work baseline from [1])
    "qsm_broadcast_time",
    "sqsm_broadcast_time",
    "bsp_broadcast_time",
    # Post-1998 models (tables 'mpc' / 'pem'; see repro.models)
    "mpc_parity_rounds",
    "mpc_or_rounds",
    "mpc_listrank_rounds",
    "pem_scan_io",
    "pem_sort_io",
    "pem_listrank_io",
    # CRCW-PRAM steps (table 'pram'; classical results the paper builds on)
    "pram_parity_steps",
    "pram_or_steps",
    "pram_listrank_steps",
]


# ---------------------------------------------------------------------------
# GSM theorems (the proved statements)
# ---------------------------------------------------------------------------

def _mu_lam(alpha: float, beta: float) -> Tuple[float, float]:
    return max(alpha, beta), min(alpha, beta)


def gsm_parity_det_time(n: int, alpha: float, beta: float, gamma: float) -> float:
    """Theorem 3.1: ``Omega(mu * log(n/gamma) / log mu)`` (concurrent reads ok)."""
    mu, _ = _mu_lam(alpha, beta)
    r = max(n / gamma, 2.0)
    return mu * log2p(r) / log2p(mu)


def gsm_parity_rand_time(n: int, alpha: float, beta: float, gamma: float) -> float:
    """Theorem 3.2: ``Omega(mu * sqrt(log r / (log log r + log mu)))``, r = n/gamma."""
    mu, _ = _mu_lam(alpha, beta)
    r = max(n / gamma, 2.0)
    return mu * math.sqrt(log2p(r) / (loglog2p(r) + math.log2(max(mu, 2.0))))


def gsm_lac_det_time(n: int, alpha: float, beta: float, gamma: float) -> float:
    """Lemma 6.3: ``Omega(mu * sqrt(log r / (log log r + log mu)))``, r = n/gamma."""
    mu, _ = _mu_lam(alpha, beta)
    r = max(n / gamma, 2.0)
    return mu * math.sqrt(log2p(r) / (loglog2p(r) + math.log2(max(mu, 2.0))))


def gsm_lac_rand_time(n: int, alpha: float, beta: float, gamma: float) -> float:
    """Theorem 6.1: ``mu * ((1/8) log log n - log gamma) / (2 log mu) - O(m)``.

    Evaluated with the hidden subtractive ``O(m)`` term dropped (it is
    ``O(log log log log n)``), i.e. ``Omega(mu * log log(n/gamma) / log mu)``.
    """
    mu, _ = _mu_lam(alpha, beta)
    r = max(n / gamma, 4.0)
    return mu * loglog2p(r) / log2p(mu)


def gsm_or_det_time(n: int, alpha: float, beta: float, gamma: float) -> float:
    """Theorem 7.2: ``Omega(mu * log r / (log log r + log mu))``, r = n/gamma."""
    mu, _ = _mu_lam(alpha, beta)
    r = max(n / gamma, 2.0)
    return mu * log2p(r) / (loglog2p(r) + math.log2(max(mu, 2.0)))


def gsm_or_rand_time(n: int, alpha: float, beta: float, gamma: float) -> float:
    """Theorem 7.1: ``Omega(mu * (log*(n/gamma) - log* mu))`` expected."""
    mu, _ = _mu_lam(alpha, beta)
    r = max(n / gamma, 2.0)
    return mu * max(1.0, log_star(r) - log_star(mu))


def gsm_or_rounds(n: int, alpha: float, beta: float, gamma: float, p: int) -> float:
    """Theorem 7.3: ``Omega(log(n/gamma) / log(mu n / (lambda p)))``."""
    mu, lam = _mu_lam(alpha, beta)
    r = max(n / gamma, 2.0)
    return log2p(r) / log2p(max(mu * n / (lam * p), 2.0))


def gsm_lac_rounds(n: int, alpha: float, beta: float, gamma: float, p: int) -> float:
    """Corollary 6.2 / Theorem 6.3 family:
    ``Omega(sqrt(log(n/gamma) / log(mu n / (lambda p))))`` rounds for
    ((mu n / lambda p)+1)-LAC."""
    mu, lam = _mu_lam(alpha, beta)
    r = max(n / gamma, 2.0)
    return math.sqrt(log2p(r) / log2p(max(mu * n / (lam * p), 2.0)))


# ---------------------------------------------------------------------------
# Table 1a: QSM time lower bounds
# ---------------------------------------------------------------------------

def qsm_lac_det_time(n: int, g: float) -> float:
    """``Omega(g sqrt(log n / (log log n + log g)))`` (Corollary 6.4)."""
    return g * math.sqrt(log2p(n) / (loglog2p(n) + math.log2(max(g, 2.0))))


def qsm_lac_rand_time(n: int, g: float) -> float:
    """``Omega(g log log n / log g)`` (Corollary 6.1)."""
    return g * loglog2p(n) / log2p(g)


def qsm_lac_rand_time_nproc(n: int, g: float) -> float:
    """``Omega(g log* n)`` with n processors (Theorem 6.2's first term at p=n)."""
    return g * max(1, log_star(n))


def qsm_or_det_time(n: int, g: float) -> float:
    """``Omega(g log n / (log log n + log g))`` (Corollary 7.2)."""
    return g * log2p(n) / (loglog2p(n) + math.log2(max(g, 2.0)))


def qsm_or_rand_time(n: int, g: float) -> float:
    """``Omega(g (log* n - log* g))`` (Corollary 7.1)."""
    return g * max(1.0, log_star(n) - log_star(g))


def qsm_parity_det_time(n: int, g: float) -> float:
    """``Omega(g log n / log g)`` (Corollary 3.1)."""
    return g * log2p(n) / log2p(g)


def qsm_parity_det_time_concurrent_reads(n: int, g: float) -> float:
    """``Theta(g log n / log g)`` with unit-time concurrent reads (Thm 3.1 + Sec 8)."""
    return g * log2p(n) / log2p(g)


def qsm_parity_rand_time(n: int, g: float, p: Optional[float] = None) -> float:
    """``Omega(g log n / (log log n + min(log log g, log log p)))`` (Theorem 3.3).

    With ``p`` omitted the ``min`` keeps only the ``log log g`` term; with
    ``p`` polynomial in n the whole denominator is ``Theta(log log n)``.
    """
    terms = [math.log2(max(math.log2(max(g, 2.0)), 2.0))]
    if p is not None:
        terms.append(math.log2(max(math.log2(max(p, 2.0)), 2.0)))
    return g * log2p(n) / (loglog2p(n) + min(terms))


# ---------------------------------------------------------------------------
# Table 1b: s-QSM time lower bounds
# ---------------------------------------------------------------------------

def sqsm_lac_det_time(n: int, g: float) -> float:
    """``Omega(g sqrt(log n / log log n))``."""
    return g * math.sqrt(log2p(n) / loglog2p(n))


def sqsm_lac_rand_time(n: int, g: float) -> float:
    """``Omega(g log log n)``."""
    return g * loglog2p(n)


def sqsm_or_det_time(n: int, g: float) -> float:
    """``Omega(g log n / log log n)``."""
    return g * log2p(n) / loglog2p(n)


def sqsm_or_rand_time(n: int, g: float) -> float:
    """``Omega(g log* n)``."""
    return g * max(1, log_star(n))


def sqsm_parity_det_time(n: int, g: float) -> float:
    """``Theta(g log n)`` — tight (Corollary 3.1 + Section 8)."""
    return g * log2p(n)


def sqsm_parity_rand_time(n: int, g: float) -> float:
    """``Omega(g log n / log log n)`` (Corollary 3.3)."""
    return g * log2p(n) / loglog2p(n)


# ---------------------------------------------------------------------------
# Table 1c: BSP time lower bounds (q = min(n, p))
# ---------------------------------------------------------------------------

def _q(n: int, p: float) -> float:
    return max(min(float(n), float(p)), 2.0)


def bsp_lac_det_time(n: int, g: float, L: float, p: float) -> float:
    """``Omega(L sqrt(log q / (log log q + log(L/g))))`` (Corollary 6.4)."""
    q = _q(n, p)
    return L * math.sqrt(log2p(q) / (loglog2p(q) + math.log2(max(L / g, 2.0))))


def bsp_lac_rand_time(n: int, g: float, L: float, p: float) -> float:
    """``Omega(L log log n / log(L/g))`` for p = Omega(n / (log n)^{1/8-eps})
    (Corollary 6.1)."""
    return L * loglog2p(n) / log2p(L / g)


def bsp_or_det_time(n: int, g: float, L: float, p: float) -> float:
    """``Omega(L log q / (log log q + log(L/g)))`` (Corollary 7.2)."""
    q = _q(n, p)
    return L * log2p(q) / (loglog2p(q) + math.log2(max(L / g, 2.0)))


def bsp_or_rand_time(n: int, g: float, L: float, p: float) -> float:
    """``Omega(L (log* q - log*(L/g)))`` (Corollary 7.1)."""
    q = _q(n, p)
    return L * max(1.0, log_star(q) - log_star(L / g))


def bsp_parity_det_time(n: int, g: float, L: float, p: float) -> float:
    """``Theta(L log q / log(L/g))`` — tight (Corollary 3.1 + Section 8)."""
    q = _q(n, p)
    return L * log2p(q) / log2p(L / g)


def bsp_parity_rand_time(n: int, g: float, L: float, p: float) -> float:
    """``Omega(L sqrt(log q / (log log q + log(L/g))))`` (Corollary 3.2)."""
    q = _q(n, p)
    return L * math.sqrt(log2p(q) / (loglog2p(q) + math.log2(max(L / g, 2.0))))


# ---------------------------------------------------------------------------
# Table 1d: rounds lower bounds for p-processor algorithms (p <= n)
# ---------------------------------------------------------------------------

def qsm_lac_rounds(n: int, g: float, p: float) -> float:
    """``Omega((log* n - log*(n/p)) + sqrt(log n / log(gn/p)))`` (Thm 6.2 + Cor 6.6)."""
    star = max(0.0, log_star(n) - log_star(max(n / p, 2.0)))
    return star + math.sqrt(log2p(n) / log2p(max(g * n / p, 2.0)))


def sqsm_lac_rounds(n: int, g: float, p: float) -> float:
    """``Omega(sqrt(log n / log(n/p)))`` (Corollary 6.6)."""
    return math.sqrt(log2p(n) / log2p(max(n / p, 2.0)))


def bsp_lac_rounds(n: int, g: float, L: float, p: float) -> float:
    """``Omega(sqrt(log n / log(n/p)))`` as printed in Table 1d.

    (Corollary 6.3's text states the numerator as ``log p``; the table
    prints ``log n``.  We follow the table; at the ``p = Theta(n/polylog)``
    regimes the bounds agree up to constants.)
    """
    return math.sqrt(log2p(n) / log2p(max(n / p, 2.0)))


def qsm_or_rounds(n: int, g: float, p: float) -> float:
    """``Theta(log n / log(ng/p))`` — tight (Corollary 7.3 + Section 8)."""
    return log2p(n) / log2p(max(n * g / p, 2.0))


def sqsm_or_rounds(n: int, g: float, p: float) -> float:
    """``Theta(log n / log(n/p))`` — tight."""
    return log2p(n) / log2p(max(n / p, 2.0))


def bsp_or_rounds(n: int, g: float, L: float, p: float) -> float:
    """``Theta(log n / log(n/p))`` — tight."""
    return log2p(n) / log2p(max(n / p, 2.0))


def qsm_parity_rounds(n: int, g: float, p: float) -> float:
    """``Omega(log n / (log(n/p) + min(log g, log log p)))`` (Thm 3.4/Cor 3.4)."""
    denom = log2p(max(n / p, 2.0)) + min(
        math.log2(max(g, 2.0)), math.log2(max(math.log2(max(p, 4.0)), 2.0))
    )
    return log2p(n) / max(denom, 1.0)


def sqsm_parity_rounds(n: int, g: float, p: float) -> float:
    """``Theta(log n / log(n/p))`` — tight."""
    return log2p(n) / log2p(max(n / p, 2.0))


def bsp_parity_rounds(n: int, g: float, L: float, p: float) -> float:
    """``Theta(log n / log(n/p))`` — tight."""
    return log2p(n) / log2p(max(n / p, 2.0))


# ---------------------------------------------------------------------------
# Post-1998 models: MPC round bounds and PEM I/O bounds
#
# Not from the 1998 paper, but encoded in the same registry so the bench
# harness can print one cross-model table (benchmarks/bench_cross_model.py).
# MPC bounds are stated in (n, s); PEM bounds in (n, p, M, B).
# ---------------------------------------------------------------------------

def mpc_parity_rounds(n: int, s: float) -> float:
    """``Omega(log n / log s)`` MPC rounds for parity.

    Roughgarden–Vassilvitskii–Wang (JACM 2018): in the ``s``-shuffle model
    any function that depends on all ``n`` inputs needs ``>= log_s n``
    rounds — one machine's view after ``r`` rounds is a function of at most
    ``s^r`` input words.  Tight: the ``s``-ary tree of
    :func:`repro.algorithms.mpc.parity_mpc` matches it.
    """
    return log2p(n) / log2p(s)


def mpc_or_rounds(n: int, s: float) -> float:
    """``Omega(log n / log s)`` MPC rounds for OR — same fan-in argument as
    :func:`mpc_parity_rounds` (OR depends on all inputs); tight via
    :func:`repro.algorithms.mpc.or_mpc`."""
    return log2p(n) / log2p(s)


def mpc_listrank_rounds(n: int, s: float) -> float:
    """Conditional ``Omega(log n)`` MPC rounds for list ranking.

    For ``s = n^epsilon`` the one-cycle-vs-two-cycles conjecture (see
    Roughgarden–Vassilvitskii–Wang and the refinements of Charikar–Ma–Tan,
    STOC 2020) implies no ``o(log n)``-round algorithm distinguishes the
    cycle structures list ranking resolves; pointer jumping
    (:func:`repro.algorithms.mpc.list_rank_mpc`) meets it at ``O(log n)``.
    Unconditionally only :func:`mpc_parity_rounds`'s ``log_s n`` is known.
    """
    return log2p(n)


def pem_scan_io(n: int, p: float, M: float, B: float) -> float:
    """``Omega(n / (pB))`` parallel I/Os: every input block must be read.

    The PEM scan bound (Arge–Goodrich–Nelson–Sitchinava, SPAA 2008) — tight
    for OR and parity, where one pass over the ``n/B`` blocks split across
    ``p`` processors suffices.
    """
    return max(1.0, n / (p * B))


def pem_sort_io(n: int, p: float, M: float, B: float) -> float:
    """``Omega((n/(pB)) log_{M/B}(n/B))`` parallel I/Os for sorting
    (Arge–Goodrich–Nelson–Sitchinava's PEM counterpart of the
    Aggarwal–Vitter bound)."""
    return max(1.0, n / (p * B)) * log_base(max(n / B, 2.0), max(M / B, 2.0))


def pem_listrank_io(n: int, p: float, M: float, B: float) -> float:
    """``Omega((n/(pB)) log_{M/B}(n/B))`` parallel I/Os for list ranking.

    Jacob–Lieber–Sitchinava (MFCS 2014) show PEM list ranking is as hard as
    sorting (permuting), so the sort bound applies verbatim.
    """
    return pem_sort_io(n, p, M, B)


def pram_parity_steps(n: int) -> float:
    """``Omega(log n / log log n)`` CRCW-PRAM steps for parity
    (Beame–Håstad, JACM 1989) — the classical bound the 1998 paper's
    Section 3 transfers to the bridging models.  Tight via the pattern
    method (:func:`repro.algorithms.pram_algos.parity_crcw`)."""
    return log2p(n) / loglog2p(n)


def pram_or_steps(n: int) -> float:
    """``Omega(1)`` CRCW-PRAM steps for OR — trivial, and met by the
    one-step concurrent write of :func:`repro.algorithms.pram_algos.or_crcw`;
    listed so the cross-model table shows the contention-free baseline
    the QSM/s-QSM/BSP bounds contrast against."""
    return 1.0


def pram_listrank_steps(n: int) -> float:
    """``Omega(log n / log log n)`` CRCW-PRAM steps for list ranking, via
    the size-preserving parity -> list-ranking reduction
    (:mod:`repro.algorithms.reductions`, the paper's Section 3 closing
    note) carrying :func:`pram_parity_steps` over."""
    return log2p(n) / loglog2p(n)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Bound:
    """One cell of Table 1 (or of the post-1998 extension tables).

    ``fn`` takes ``(n, g)`` for QSM/s-QSM time bounds, ``(n, g, L, p)`` for
    BSP time bounds, ``(n, g, p)`` for QSM/s-QSM rounds and
    ``(n, g, L, p)`` for BSP rounds — matching the per-model signatures
    above.  The post-1998 tables use ``(n, s)`` for MPC rounds and
    ``(n, p, M, B)`` for PEM I/Os.  ``tight`` marks the Theta entries.
    """

    table: str  # '1a' | '1b' | '1c' | '1d' | 'mpc' | 'pem' | 'pram'
    model: str  # 'QSM' | 's-QSM' | 'BSP' | 'MPC' | 'PEM' | 'PRAM'
    problem: str  # 'LAC' | 'OR' | 'Parity' | 'ListRank' | 'Sort'
    variant: str  # 'deterministic' | 'randomized'
    kind: str  # 'time' | 'rounds' | 'io' | 'steps'
    fn: Callable[..., float]
    text: str  # the formula as printed in the source paper
    tight: bool = False


ALL_BOUNDS: List[Bound] = [
    # --- Table 1a: QSM time ---
    Bound("1a", "QSM", "LAC", "deterministic", "time", qsm_lac_det_time,
          "g*sqrt(log n/(loglog n + log g))"),
    Bound("1a", "QSM", "LAC", "randomized", "time", qsm_lac_rand_time,
          "g*loglog n/log g"),
    Bound("1a", "QSM", "OR", "deterministic", "time", qsm_or_det_time,
          "g*log n/(loglog n + log g)"),
    Bound("1a", "QSM", "OR", "randomized", "time", qsm_or_rand_time,
          "g*(log* n - log* g)"),
    Bound("1a", "QSM", "Parity", "deterministic", "time", qsm_parity_det_time,
          "g*log n/log g"),
    Bound("1a", "QSM", "Parity", "randomized", "time", qsm_parity_rand_time,
          "g*log n/(loglog n + min(loglog g, loglog p))"),
    # --- Table 1b: s-QSM time ---
    Bound("1b", "s-QSM", "LAC", "deterministic", "time", sqsm_lac_det_time,
          "g*sqrt(log n/loglog n)"),
    Bound("1b", "s-QSM", "LAC", "randomized", "time", sqsm_lac_rand_time,
          "g*loglog n"),
    Bound("1b", "s-QSM", "OR", "deterministic", "time", sqsm_or_det_time,
          "g*log n/loglog n"),
    Bound("1b", "s-QSM", "OR", "randomized", "time", sqsm_or_rand_time,
          "g*log* n"),
    Bound("1b", "s-QSM", "Parity", "deterministic", "time", sqsm_parity_det_time,
          "g*log n", tight=True),
    Bound("1b", "s-QSM", "Parity", "randomized", "time", sqsm_parity_rand_time,
          "g*log n/loglog n"),
    # --- Table 1c: BSP time ---
    Bound("1c", "BSP", "LAC", "deterministic", "time", bsp_lac_det_time,
          "L*sqrt(log q/(loglog q + log(L/g)))"),
    Bound("1c", "BSP", "LAC", "randomized", "time", bsp_lac_rand_time,
          "L*loglog n/log(L/g)  [p = Omega(n/(log n)^{1/8-eps})]"),
    Bound("1c", "BSP", "OR", "deterministic", "time", bsp_or_det_time,
          "L*log q/(loglog q + log(L/g))"),
    Bound("1c", "BSP", "OR", "randomized", "time", bsp_or_rand_time,
          "L*(log* q - log*(L/g))"),
    Bound("1c", "BSP", "Parity", "deterministic", "time", bsp_parity_det_time,
          "L*log q/log(L/g)", tight=True),
    Bound("1c", "BSP", "Parity", "randomized", "time", bsp_parity_rand_time,
          "L*sqrt(log q/(loglog q + log(L/g)))"),
    # --- Table 1d: rounds ---
    Bound("1d", "QSM", "LAC", "randomized", "rounds", qsm_lac_rounds,
          "(log* n - log*(n/p)) + sqrt(log n/log(gn/p))"),
    Bound("1d", "s-QSM", "LAC", "randomized", "rounds", sqsm_lac_rounds,
          "sqrt(log n/log(n/p))"),
    Bound("1d", "BSP", "LAC", "randomized", "rounds", bsp_lac_rounds,
          "sqrt(log n/log(n/p))"),
    Bound("1d", "QSM", "OR", "randomized", "rounds", qsm_or_rounds,
          "log n/log(ng/p)", tight=True),
    Bound("1d", "s-QSM", "OR", "randomized", "rounds", sqsm_or_rounds,
          "log n/log(n/p)", tight=True),
    Bound("1d", "BSP", "OR", "randomized", "rounds", bsp_or_rounds,
          "log n/log(n/p)", tight=True),
    Bound("1d", "QSM", "Parity", "randomized", "rounds", qsm_parity_rounds,
          "log n/(log(n/p) + min(log g, loglog p))"),
    Bound("1d", "s-QSM", "Parity", "randomized", "rounds", sqsm_parity_rounds,
          "log n/log(n/p)", tight=True),
    Bound("1d", "BSP", "Parity", "randomized", "rounds", bsp_parity_rounds,
          "log n/log(n/p)", tight=True),
    # --- Post-1998: MPC rounds (s-shuffle fan-in argument; see repro.models) ---
    Bound("mpc", "MPC", "Parity", "deterministic", "rounds", mpc_parity_rounds,
          "log n/log s  [RVW18]", tight=True),
    Bound("mpc", "MPC", "OR", "deterministic", "rounds", mpc_or_rounds,
          "log n/log s  [RVW18]", tight=True),
    Bound("mpc", "MPC", "ListRank", "randomized", "rounds", mpc_listrank_rounds,
          "log n  [conditional: 1-vs-2-cycles, CMT20]"),
    # --- Post-1998: PEM parallel I/Os ---
    Bound("pem", "PEM", "Parity", "deterministic", "io", pem_scan_io,
          "n/(pB)  [AGNS08 scan]", tight=True),
    Bound("pem", "PEM", "OR", "deterministic", "io", pem_scan_io,
          "n/(pB)  [AGNS08 scan]", tight=True),
    Bound("pem", "PEM", "ListRank", "deterministic", "io", pem_listrank_io,
          "(n/(pB))*log_{M/B}(n/B)  [JLS14]"),
    Bound("pem", "PEM", "Sort", "deterministic", "io", pem_sort_io,
          "(n/(pB))*log_{M/B}(n/B)  [AGNS08]"),
    # --- CRCW-PRAM steps (classical baselines for the cross-model table) ---
    Bound("pram", "PRAM", "Parity", "deterministic", "steps", pram_parity_steps,
          "log n/loglog n  [Beame-Hastad]", tight=True),
    Bound("pram", "PRAM", "OR", "deterministic", "steps", pram_or_steps,
          "1  [concurrent write]", tight=True),
    Bound("pram", "PRAM", "ListRank", "deterministic", "steps", pram_listrank_steps,
          "log n/loglog n  [via parity reduction]"),
]


def bounds_for(
    table: Optional[str] = None,
    model: Optional[str] = None,
    problem: Optional[str] = None,
    variant: Optional[str] = None,
) -> List[Bound]:
    """Filter :data:`ALL_BOUNDS` by any combination of attributes."""
    out = []
    for b in ALL_BOUNDS:
        if table is not None and b.table != table:
            continue
        if model is not None and b.model != model:
            continue
        if problem is not None and b.problem != problem:
            continue
        if variant is not None and b.variant != variant:
            continue
        out.append(b)
    return out


# ---------------------------------------------------------------------------
# Broadcasting (Adler, Gibbons, Matias & Ramachandran [1])
#
# Not part of Table 1, but the paper's related-work baseline: "A tight lower
# bound on the time needed for broadcasting on the QSM and the BSP is given
# in [1]".  The matching algorithms live in repro.algorithms.broadcast and
# the S8 bench checks them against these forms.
# ---------------------------------------------------------------------------

def qsm_broadcast_time(n: int, g: float) -> float:
    """Theta(g log n / log g): read-doubling with fan-in g is optimal [1]."""
    return g * log2p(n) / log2p(g)


def sqsm_broadcast_time(n: int, g: float) -> float:
    """Theta(g log n): contention costs g per unit, so fan-in O(1)."""
    return g * log2p(n)


def bsp_broadcast_time(n: int, g: float, L: float, p: float) -> float:
    """Theta(L log q / log(L/g)), q = min(n, p): (L/g)-ary send tree."""
    q = _q(n, p)
    return L * log2p(q) / log2p(L / g)


# ---------------------------------------------------------------------------
# Section 6.3: LAC rounds on the relaxed-round GSM(h) (Theorem 6.3)
# ---------------------------------------------------------------------------

def gsm_h_lac_rounds(n: int, alpha: float, beta: float, gamma: float, h: float, d: float) -> float:
    """Theorem 6.3: solving ``((mu h / lambda) + 1)``-LAC with a destination
    array of size ``d`` on a GSM(h) requires
    ``Omega(sqrt(log(n / (d gamma)) / log(mu h / lambda)))`` rounds."""
    if h < 1 or d < 1:
        raise ValueError(f"need h, d >= 1; got h={h}, d={d}")
    mu, lam = _mu_lam(alpha, beta)
    ratio = max(mu * h / lam, 2.0)
    return math.sqrt(log2p(max(n / (d * gamma), 2.0)) / log2p(ratio))
