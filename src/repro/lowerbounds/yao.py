"""Theorem 2.1 (Yao's principle) as an exactly evaluable game.

The theorem: the worst-case success probability ``S1`` of any ``T``-step
randomized algorithm is at most the best distributional success ``S2`` of a
``T``-step deterministic algorithm against any fixed input distribution.

To make both sides computable we use the query model that underlies all the
paper's step-counting arguments: a *depth-d decision strategy* adaptively
inspects at most ``d`` of the ``n`` input bits and then answers.  (Every
``T``-step GSM/QSM computation induces such a strategy for the processor
writing the output, with ``d`` = the information it can have gathered —
which is exactly how the paper's adversaries count knowledge.)

* :func:`optimal_deterministic_success` computes ``S2`` *exactly* by
  game-tree dynamic programming over knowledge states — no enumeration of
  trees is needed: the optimal value recurses as
  ``V(state, d) = max_i E_{b ~ D|state}[ V(state + (i=b), d-1) ]`` with leaf
  value ``max_a P[f(x) = a | state]``.
* :func:`randomized_worst_success` evaluates any randomized strategy's
  worst-case success exactly (enumerating inputs) or approximately.
* :func:`yao_gap` returns ``S2 - S1`` for a given strategy; Theorem 2.1
  says it is always >= 0, and the property tests hammer this.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.lowerbounds.adversary import InputDistribution, PartialInputMap
from repro.util.seeding import RngLike, derive_rng

__all__ = [
    "optimal_deterministic_success",
    "randomized_worst_success",
    "yao_gap",
    "RandomizedStrategy",
]


def optimal_deterministic_success(
    f: Callable[[int], int],
    n: int,
    depth: int,
    dist: InputDistribution,
) -> float:
    """``S2``: the best success probability of any depth-``depth`` strategy
    against distribution ``dist``, computed exactly.

    ``f(mask)`` is the target function on complete assignments.
    """
    if n < 0 or n > 16:
        raise ValueError(f"need 0 <= n <= 16, got {n}")
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")

    # Precompute P[mask] once.
    probs = [dist.probability(mask) for mask in range(1 << n)]
    total = sum(probs)
    if total <= 0:
        raise ValueError("distribution has no mass")

    @lru_cache(maxsize=None)
    def value(known_mask: int, known_values: int, d: int) -> float:
        # Mass and per-answer mass of inputs consistent with the knowledge.
        mass: Dict[int, float] = {}
        total_mass = 0.0
        for mask in range(1 << n):
            if (mask & known_mask) != known_values:
                continue
            p = probs[mask]
            if p == 0.0:
                continue
            total_mass += p
            ans = f(mask)
            mass[ans] = mass.get(ans, 0.0) + p
        if total_mass == 0.0:
            return 0.0  # unreachable state contributes nothing
        best_answer = max(mass.values())
        if d == 0:
            return best_answer
        best = best_answer  # querying is never forced
        for i in range(n):
            bit = 1 << i
            if known_mask & bit:
                continue
            v0 = value(known_mask | bit, known_values, d - 1)
            v1 = value(known_mask | bit, known_values | bit, d - 1)
            # v0/v1 are already conditional *expected masses* scaled by the
            # branch mass: we recurse on absolute mass to avoid dividing.
            best = max(best, v0 + v1)
        return best

    # value() returns probability mass of success; normalise by total mass.
    return value(0, 0, depth) / total


class RandomizedStrategy:
    """A randomized depth-d strategy: a distribution over deterministic ones.

    Supplied as a callable ``play(mask, rng) -> int`` that may read at most
    ``depth`` bits of ``mask`` through the provided ``reveal`` helper; for
    exactness we instead accept a list of deterministic strategies with
    weights (the general form by convexity).
    Each deterministic strategy is ``(query_fn, answer_fn)`` where
    ``query_fn(known: dict) -> Optional[int]`` picks the next index (or None
    to stop) and ``answer_fn(known: dict) -> int`` answers.
    """

    def __init__(
        self,
        strategies: Sequence[Tuple[Callable, Callable]],
        weights: Optional[Sequence[float]] = None,
        depth: int = 0,
    ) -> None:
        if not strategies:
            raise ValueError("need at least one deterministic strategy")
        self.strategies = list(strategies)
        if weights is None:
            weights = [1.0 / len(strategies)] * len(strategies)
        if len(weights) != len(strategies):
            raise ValueError("weights/strategies length mismatch")
        s = sum(weights)
        if s <= 0 or any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative with positive sum")
        self.weights = [w / s for w in weights]
        self.depth = depth

    def success_on(self, f: Callable[[int], int], n: int, mask: int) -> float:
        """Probability of answering ``f(mask)`` correctly on input ``mask``."""
        want = f(mask)
        total = 0.0
        for (query_fn, answer_fn), w in zip(self.strategies, self.weights):
            known: Dict[int, int] = {}
            for _ in range(self.depth):
                idx = query_fn(dict(known))
                if idx is None:
                    break
                known[idx] = (mask >> idx) & 1
            if answer_fn(dict(known)) == want:
                total += w
        return total


def randomized_worst_success(
    strategy: RandomizedStrategy,
    f: Callable[[int], int],
    n: int,
) -> float:
    """``S1``: the strategy's success probability on its worst input."""
    if n < 0 or n > 16:
        raise ValueError(f"need 0 <= n <= 16, got {n}")
    return min(strategy.success_on(f, n, mask) for mask in range(1 << n))


def yao_gap(
    strategy: RandomizedStrategy,
    f: Callable[[int], int],
    n: int,
    dist: InputDistribution,
) -> float:
    """``S2 - S1`` for the given strategy and distribution (>= 0 by Thm 2.1)."""
    s1 = randomized_worst_success(strategy, f, n)
    s2 = optimal_deterministic_success(f, n, strategy.depth, dist)
    return s2 - s1
