"""The polynomial-degree argument of Theorems 3.1, 7.2 and 7.3, executable.

The proof of Theorem 3.1 maintains, phase by phase, an upper bound on the
degree of every function describing a processor state or cell content:

    ``b_i = (3 + tau_i + 2*tau'_i) * b_{i-1}``,  ``b_0 = gamma``,

where ``tau_i`` is the maximum number of read/write requests by any
processor in phase ``i`` and ``tau'_i`` the maximum queue length.  Since
computing parity of ``r`` bits requires the output cell's function to reach
degree ``r``, any algorithm must run until the envelope reaches ``r``; the
chain of inequalities in the proof then yields

    ``r <= (6 mu)^(T / mu)``,  i.e.  ``T >= mu * log r / log(6 mu)``.

This module makes both halves runnable:

* :func:`degree_envelope` replays a machine's phase history and produces
  the ``b_i`` sequence (using the *measured* ``tau_i``/``tau'_i``, so the
  envelope is exactly what the adversary would certify for that run);
* :func:`certified_time_bound` turns a target degree into the proof's time
  bound;
* :func:`check_run` asserts the two consistency facts the theorem needs on
  a *correct* run: the envelope reached the target degree, and the measured
  time is at least the certified bound;
* :func:`measure_cell_degrees` brute-forces the *actual* degree of every
  cell's content function by running a (deterministic) algorithm on all
  ``2^r`` inputs at small ``r`` and building
  :class:`~repro.boolfn.multilinear.BooleanFunction` objects per (cell,
  phase) — the tests verify actual degree <= envelope, which is the
  induction of the proof observed live.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.boolfn.multilinear import MultilinearPolynomial
from repro.core.gsm import GSM
from repro.core.params import GSMParams
from repro.core.phase import PhaseRecord

__all__ = [
    "degree_envelope",
    "certified_time_bound",
    "check_run",
    "measure_cell_degrees",
    "DegreeCertificate",
]


def degree_envelope(
    history: Sequence[PhaseRecord],
    initial_degree: float = 1.0,
) -> List[float]:
    """The ``b_i`` sequence for a recorded phase history.

    ``b_0 = initial_degree`` (``gamma`` when each input cell packs ``gamma``
    bits); ``b_i = (3 + tau_i + 2 tau'_i) b_{i-1}`` per Theorem 3.1's
    induction.
    """
    if initial_degree < 1:
        raise ValueError(f"initial degree must be >= 1, got {initial_degree}")
    env = [float(initial_degree)]
    for record in history:
        tau = record.m_rw
        tau_prime = record.kappa
        env.append((3.0 + tau + 2.0 * tau_prime) * env[-1])
    return env


def certified_time_bound(target_degree: float, params: GSMParams) -> float:
    """``T >= mu * log(target_degree) / log(6 mu)`` — the Theorem 3.1 bound.

    Derived from ``r <= (6 mu)^(T/mu)``.  Returns 0 for degree <= 1.
    """
    if target_degree <= 1.0:
        return 0.0
    mu = params.mu
    return mu * math.log(target_degree) / math.log(6.0 * mu)


@dataclass(frozen=True)
class DegreeCertificate:
    """Outcome of :func:`check_run` on one GSM execution."""

    envelope: Tuple[float, ...]
    target_degree: float
    reached: bool  # final envelope >= target (necessary for correctness)
    certified_bound: float  # mu log r / log 6mu
    measured_time: float
    satisfies_bound: bool  # measured_time >= certified_bound (up to epsilon)

    @property
    def slack(self) -> float:
        """measured_time / certified_bound (>= 1 when the bound holds)."""
        if self.certified_bound == 0.0:
            return float("inf")
        return self.measured_time / self.certified_bound


def check_run(machine: GSM, target_degree: float) -> DegreeCertificate:
    """Certify one finished GSM run against the degree argument.

    ``target_degree`` is the degree the output function must reach (``r``
    for parity or OR of ``r`` independent cells).  For a *correct* algorithm
    both ``reached`` and ``satisfies_bound`` must be true; an algorithm that
    terminates with ``reached == False`` cannot be computing the target
    function on all inputs (that is the contrapositive the lower bound
    rests on).
    """
    env = degree_envelope(machine.history, initial_degree=machine.params.gamma)
    bound = certified_time_bound(target_degree, machine.params)
    return DegreeCertificate(
        envelope=tuple(env),
        target_degree=float(target_degree),
        reached=env[-1] >= target_degree,
        certified_bound=bound,
        measured_time=machine.time,
        satisfies_bound=machine.time + 1e-9 >= bound,
    )


def measure_cell_degrees(
    algorithm: Callable[[GSM, List[int]], Any],
    r: int,
    params: Optional[GSMParams] = None,
    cell_predicate: Optional[Callable[[int], bool]] = None,
) -> Dict[int, List[int]]:
    """Actual per-phase degrees of every cell's content function.

    Runs ``algorithm(machine, bits)`` on *all* ``2^r`` bit inputs with
    snapshot recording, encodes each cell's per-input content as an integer
    function on the cube, and returns ``{phase_index: [deg(cell) ...]}``
    (one list entry per distinct cell seen at that phase, sorted by address,
    filtered by ``cell_predicate``).

    Exponential in ``r`` by construction — intended for ``r <= 10``.

    Raises if the algorithm's phase structure is input-dependent (the
    adversary framework of Section 5 exists precisely to handle that; this
    brute-force harness requires oblivious phase counts).
    """
    if r < 1 or r > 14:
        raise ValueError(f"measure_cell_degrees needs 1 <= r <= 14, got {r}")
    if params is None:
        params = GSMParams()

    # snapshots[input_mask] = list of per-phase memory dicts
    all_snapshots: List[List[Dict[int, Any]]] = []
    n_phases: Optional[int] = None
    for mask in range(1 << r):
        bits = [(mask >> i) & 1 for i in range(r)]
        machine = GSM(params, record_snapshots=True, seed=0)
        algorithm(machine, bits)
        if n_phases is None:
            n_phases = len(machine.snapshots)
        elif len(machine.snapshots) != n_phases:
            raise ValueError(
                "algorithm phase count varies with the input; "
                "measure_cell_degrees requires an oblivious phase structure"
            )
        all_snapshots.append(machine.snapshots)
    assert n_phases is not None

    result: Dict[int, List[int]] = {}
    for t in range(n_phases):
        addrs = sorted({a for snaps in all_snapshots for a in snaps[t]})
        if cell_predicate is not None:
            addrs = [a for a in addrs if cell_predicate(a)]
        degrees = []
        for addr in addrs:
            # Encode the cell's content across inputs as integers; distinct
            # contents get distinct codes.  The degree of the 0/1 indicator
            # of any single content value lower-bounds nothing by itself, so
            # we take the max degree over indicator functions of each
            # distinct content — this equals the paper's "degree of the
            # function describing the contents" for functions into a finite
            # range (each state's characteristic function is what Section 5
            # bounds).
            contents = [snaps[t].get(addr) for snaps in all_snapshots]
            codes: Dict[Any, int] = {}
            encoded = []
            for c in contents:
                key = repr(c)
                codes.setdefault(key, len(codes))
                encoded.append(codes[key])
            max_deg = 0
            for state_code in range(len(codes)):
                table = [1 if e == state_code else 0 for e in encoded]
                poly = MultilinearPolynomial.from_truth_table(table, r)
                max_deg = max(max_deg, poly.degree)
            degrees.append(max_deg)
        result[t] = degrees
    return result
