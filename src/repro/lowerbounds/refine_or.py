"""The Section 7 modified Random Adversary for the OR lower bound.

Differences from the Section 5 adversary, implemented here as the paper
specifies:

* the adversary restricts a *set of input maps* (no inputs are fixed until
  the end) — we track the set of remaining *components* of the special
  mixture distribution;
* the input distribution ``D`` is the mixture of Section 7.3: the all-zeros
  map with probability 1/2, and for each level ``i`` the distribution
  ``H_i`` (every gamma-group of inputs set to all-ones independently with
  probability ``1/d_i``) with probability ``2 / log*_{mu+1}(n/gamma)``;
* RANDOMRESTRICT decides, with the correct conditional probability, whether
  the input comes from a named component; RANDOMFIX samples a complete map
  from the remaining mixture;
* REFINE (Section 7.3 pseudocode) tests the algorithm's maximum fan-out and
  maximum cell contention against the ``alpha d_t^{d_t+2} log*`` thresholds,
  gives up (fully fixing the input) when they are exceeded, and otherwise
  peels off ``H_t`` and continues.

At demo scale the d-sequence towers overflow immediately, so the
constructor accepts an explicit ``d_sequence`` for experiments; the default
follows the paper's recurrence with saturation.  The quantity the
Theorem 7.1 check needs — the exact success probability of the algorithm's
output cell over ``D`` — is computed by :func:`or_success_probability` by
full enumeration of the mixture's support.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.lowerbounds.adversary import GSMOracle, PartialInputMap
from repro.util.mathfn import log_star_base
from repro.util.seeding import RngLike, derive_rng

__all__ = [
    "ORMixture",
    "ORAdversary",
    "or_success_probability",
    "default_d_sequence",
]


def default_d_sequence(n: int, gamma: int, mu: float, levels: int) -> List[float]:
    """The Section 7.3 ``d_i`` recurrence with float saturation.

    ``d_0 = log^{(3/4 log* r)}_{mu+1}(r)`` (iterated log applied
    ``3/4 log* r`` times), ``d_{i+1} = (mu+1)^{(mu+1)^{d_i}}``.
    """
    r = max(n / gamma, 2.0)
    base = mu + 1.0
    iterations = max(1, (3 * log_star_base(r, base)) // 4)
    d0 = r
    for _ in range(iterations):
        d0 = max(math.log(max(d0, base)) / math.log(base), 1.0 + 1e-9)
    ds = [max(d0, 1.0 + 1e-6)]
    for _ in range(levels - 1):
        prev = ds[-1]
        exponent = base**prev if prev < 64 else float("inf")
        ds.append(base**exponent if exponent < 1024 else float("inf"))
    return ds


class ORMixture:
    """The Section 7.3 input distribution over ``n = groups * gamma`` bits.

    Components: ``('zero',)`` with probability 1/2; ``('H', i)`` for
    ``i = 0..levels-1`` each with probability ``2 / log*_{mu+1}(r)``
    (renormalised so the total is exactly 1, as any leftover mass would sit
    on deeper, effectively-all-zero levels).
    """

    def __init__(
        self,
        groups: int,
        gamma: int,
        mu: float = 1.0,
        levels: Optional[int] = None,
        d_sequence: Optional[Sequence[float]] = None,
    ) -> None:
        if groups < 1 or gamma < 1:
            raise ValueError(f"need groups, gamma >= 1; got {groups}, {gamma}")
        self.groups = groups
        self.gamma = gamma
        self.n = groups * gamma
        if self.n > 16:
            raise ValueError(f"ORMixture enumerates 2^n masks; n={self.n} too large")
        self.mu = mu
        r = max(self.n / gamma, 2.0)
        star = max(1, log_star_base(r, mu + 1.0))
        if levels is None:
            levels = max(1, star // 4)
        self.levels = levels
        if d_sequence is not None:
            if len(d_sequence) != levels:
                raise ValueError("d_sequence length must equal levels")
            self.d = [float(d) for d in d_sequence]
        else:
            self.d = default_d_sequence(self.n, gamma, mu, levels)
        if any(d < 1.0 for d in self.d):
            raise ValueError(f"d_i must be >= 1, got {self.d}")
        # Component probabilities: 1/2 zeros, rest split evenly over levels
        # (the paper's 2/log* shares, renormalised).
        self.components: List[Tuple] = [("zero",)] + [("H", i) for i in range(levels)]
        level_share = 0.5 / levels
        self.comp_prob: Dict[Tuple, float] = {("zero",): 0.5}
        for i in range(levels):
            self.comp_prob[("H", i)] = level_share

    # -- per-component mask distributions ------------------------------------

    def group_mask(self, j: int) -> int:
        lo = j * self.gamma
        return ((1 << self.gamma) - 1) << lo

    def mask_prob_in_component(self, comp: Tuple, mask: int) -> float:
        """P[mask | component]."""
        if comp == ("zero",):
            return 1.0 if mask == 0 else 0.0
        _, i = comp
        p1 = 1.0 / self.d[i]
        prob = 1.0
        for j in range(self.groups):
            gm = self.group_mask(j)
            part = mask & gm
            if part == gm:
                prob *= p1
            elif part == 0:
                prob *= 1.0 - p1
            else:
                return 0.0  # groups are set atomically
        return prob

    def mask_prob(self, mask: int) -> float:
        """P[mask] under the full mixture."""
        return sum(
            self.comp_prob[comp] * self.mask_prob_in_component(comp, mask)
            for comp in self.components
        )

    def support(self, comps: Optional[Sequence[Tuple]] = None) -> FrozenSet[int]:
        """All masks with positive probability under the given components."""
        comps = list(comps) if comps is not None else self.components
        out = set()
        for mask in range(1 << self.n):
            if any(self.mask_prob_in_component(c, mask) > 0.0 for c in comps):
                out.add(mask)
        return frozenset(out)

    def sample(self, comps: Sequence[Tuple], rng: RngLike = None) -> int:
        """RANDOMFIX: sample a complete mask from the renormalised mixture."""
        rng = derive_rng(rng)
        weights = [self.comp_prob[c] for c in comps]
        total = sum(weights)
        if total <= 0:
            raise ValueError("no probability mass left")
        u = rng.random() * total
        acc = 0.0
        comp = comps[-1]
        for c, w in zip(comps, weights):
            acc += w
            if u <= acc:
                comp = c
                break
        if comp == ("zero",):
            return 0
        _, i = comp
        p1 = 1.0 / self.d[i]
        mask = 0
        for j in range(self.groups):
            if rng.random() < p1:
                mask |= self.group_mask(j)
        return mask


@dataclass
class ORRefineOutcome:
    """Result of one Section 7 REFINE call."""

    remaining: Tuple[Tuple, ...]  # components still possible
    fixed_mask: Optional[int]  # set when the adversary RANDOMFIXed
    x: float  # certified big-steps for the phase
    done: bool
    reason: str  # 'fanout' | 'contention' | 'restricted-to-H' | 'continue'


class ORAdversary:
    """Drives the Section 7 REFINE against a white-box GSM algorithm."""

    def __init__(self, oracle: GSMOracle, mixture: ORMixture) -> None:
        if oracle.n != mixture.n:
            raise ValueError(
                f"oracle has {oracle.n} inputs but mixture has {mixture.n}"
            )
        self.oracle = oracle
        self.mix = mixture

    def threshold(self, t: int) -> float:
        """``d_t^{d_t+2} * log*_{mu+1}(n/gamma)`` (the alpha/beta factor is
        applied by the caller per the pseudocode's two uses)."""
        d_t = self.mix.d[min(t, len(self.mix.d) - 1)]
        r = max(self.mix.n / self.mix.gamma, 2.0)
        star = max(1, log_star_base(r, self.mix.mu + 1.0))
        if d_t > 32:
            return float("inf")
        return (d_t ** (d_t + 2.0)) * star

    def _max_fanout_and_contention(
        self, t: int, masks: FrozenSet[int]
    ) -> Tuple[int, int]:
        max_fan = 0
        max_cont = 0
        for mask in masks:
            traces = self.oracle.proc_traces[mask]
            readers: Dict[int, int] = {}
            for p, obs in traces.items():
                if t < len(obs) and obs[t] is not None:
                    max_fan = max(max_fan, len(obs[t]))
                    for cell, _ in obs[t]:
                        readers[cell] = readers.get(cell, 0) + 1
            if readers:
                max_cont = max(max_cont, max(readers.values()))
        return max_fan, max_cont

    def refine(
        self,
        t: int,
        remaining: Sequence[Tuple],
        rng: RngLike = None,
    ) -> ORRefineOutcome:
        """One Section 7.3 REFINE call at phase t."""
        rng = derive_rng(rng)
        remaining = list(remaining)
        masks = self.mix.support(remaining)
        alpha = self.oracle.params.alpha
        beta = self.oracle.params.beta
        fan, cont = self._max_fanout_and_contention(t, masks)
        thr = self.threshold(t)

        if fan >= alpha * thr:
            mask = self.mix.sample(remaining, rng)
            x = max(1.0, math.ceil(fan / alpha))
            return ORRefineOutcome((), mask, x, True, "fanout")
        if cont >= beta * thr:
            mask = self.mix.sample(remaining, rng)
            x = max(1.0, math.ceil(cont / beta))
            return ORRefineOutcome((), mask, x, True, "contention")

        # RANDOMRESTRICT(F, H_t): is the input drawn from level t?
        target = ("H", t) if ("H", t) in remaining else None
        if target is not None:
            p_target = self.mix.comp_prob[target]
            p_total = sum(self.mix.comp_prob[c] for c in remaining)
            if derive_rng(rng).random() < p_target / p_total:
                mask = self.mix.sample([target], rng)
                return ORRefineOutcome((), mask, 1.0, True, "restricted-to-H")
            remaining = [c for c in remaining if c != target]
        return ORRefineOutcome(tuple(remaining), None, 1.0, False, "continue")

    def run(self, T: int, rng: RngLike = None) -> Tuple[Optional[int], List[ORRefineOutcome]]:
        """Drive REFINE for up to T phases; RANDOMFIX at the end if needed.

        Returns (final complete mask, outcome list).
        """
        rng = derive_rng(rng)
        remaining: Sequence[Tuple] = tuple(self.mix.components)
        outcomes: List[ORRefineOutcome] = []
        t = 0
        phase = 0
        while t < T and phase < self.oracle.n_phases:
            out = self.refine(phase, remaining, rng)
            outcomes.append(out)
            if out.done:
                return out.fixed_mask, outcomes
            remaining = out.remaining
            if not remaining:
                break
            t += int(out.x)
            phase += 1
        mask = self.mix.sample(list(remaining) or list(self.mix.components), rng)
        return mask, outcomes


def or_success_probability(
    oracle: GSMOracle,
    output_cell: int,
    mixture: ORMixture,
    decode=None,
) -> float:
    """Exact success probability of the algorithm's OR answer over ``D``.

    ``decode`` maps the output cell's final repr string to 0/1 (default:
    content ``repr(1)``/containing a 1 means answer 1).  This is the
    quantity Theorem 7.1 bounds by ``(1+eps)/2`` for fast algorithms.
    """
    if decode is None:
        def decode(content_repr: str) -> int:
            return 1 if "1" in content_repr.replace("(", "").replace(",", " ").split() else 0

    total = 0.0
    for mask in range(1 << mixture.n):
        p = mixture.mask_prob(mask)
        if p == 0.0:
            continue
        want = 1 if mask != 0 else 0
        _, content = oracle.cell_trace(output_cell, oracle.n_phases, mask)
        got = decode(content if content is not None else "")
        if got == want:
            total += p
    return total
