"""The Random Adversary framework (Section 4), executable.

The framework has four moving parts, each implemented here exactly as the
paper defines it:

* **Partial input maps** (Section 4.1) — :class:`PartialInputMap`, a map
  from input indices to ``{0, 1}`` or unset (``*``), ordered by refinement.
* **RANDOMSET** (Section 4.2) — :func:`random_set` fixes a set of unset
  inputs one at a time according to the chosen distribution conditioned on
  the partial map so far; by Fact 4.1 the composition of RANDOMSET calls
  samples the distribution exactly (the statistical tests check this).
* **REFINE** — problem-specific; supplied by the caller as a callable
  ``refine(t, f, rng) -> (f', x)``.  Section 5's and Section 7's instances
  live in :mod:`repro.lowerbounds.refine_lac` / ``refine_or``.
* **GENERATE** (Section 4.3) — :func:`generate` drives REFINE until the
  claimed time bound ``T`` is reached, then completes the input with
  RANDOMSET, returning the full input map plus the trajectory of partial
  maps (for Lemma 4.2-style goodness auditing).

The white-box execution oracle (:class:`GSMOracle`) that the REFINE
instances query — Trace / States / Know / AffProc / AffCell / Cert of
Section 5.1 — is also here, implemented by brute-force enumeration over all
inputs of a small instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.gsm import GSM
from repro.core.params import GSMParams
from repro.util.seeding import RngLike, derive_rng

__all__ = [
    "UNSET",
    "PartialInputMap",
    "InputDistribution",
    "IIDBernoulli",
    "random_set",
    "generate",
    "GSMOracle",
]

UNSET = "*"


class PartialInputMap:
    """An assignment of some of ``n`` binary inputs; the rest are ``*``.

    Immutable.  ``f2 <= f1`` (refinement) iff f2 agrees with f1 on
    everything f1 sets.
    """

    __slots__ = ("n", "_mask", "_values")

    def __init__(self, n: int, assignments: Optional[Dict[int, int]] = None) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        self.n = n
        mask = 0
        values = 0
        if assignments:
            for idx, val in assignments.items():
                if not 0 <= idx < n:
                    raise ValueError(f"input index {idx} out of range for n={n}")
                if val not in (0, 1):
                    raise ValueError(f"input values must be 0/1, got {val}")
                mask |= 1 << idx
                if val:
                    values |= 1 << idx
        self._mask = mask
        self._values = values

    # -- queries -----------------------------------------------------------

    def __getitem__(self, idx: int):
        if not 0 <= idx < self.n:
            raise IndexError(idx)
        if not self._mask & (1 << idx):
            return UNSET
        return (self._values >> idx) & 1

    @property
    def set_mask(self) -> int:
        return self._mask

    @property
    def set_count(self) -> int:
        return bin(self._mask).count("1")

    def unset_indices(self) -> List[int]:
        return [i for i in range(self.n) if not self._mask & (1 << i)]

    def set_indices(self) -> List[int]:
        return [i for i in range(self.n) if self._mask & (1 << i)]

    def is_complete(self) -> bool:
        return self._mask == (1 << self.n) - 1

    def refine(self, assignments: Dict[int, int]) -> "PartialInputMap":
        """New map with extra inputs fixed; refusing to change set inputs."""
        merged: Dict[int, int] = {i: self[i] for i in self.set_indices()}
        for idx, val in assignments.items():
            if idx in merged and merged[idx] != val:
                raise ValueError(
                    f"refinement would change input {idx} from {merged[idx]} to {val}"
                )
            merged[idx] = val
        return PartialInputMap(self.n, merged)

    def refines(self, other: "PartialInputMap") -> bool:
        """True iff self <= other (self agrees with everything other sets)."""
        if self.n != other.n:
            return False
        if other._mask & ~self._mask:
            return False
        return (self._values & other._mask) == other._values

    def consistent_masks(self) -> Iterable[int]:
        """All complete assignments (as bitmasks) refining this map."""
        unset = self.unset_indices()
        for combo in range(1 << len(unset)):
            mask = self._values
            for j, idx in enumerate(unset):
                if combo & (1 << j):
                    mask |= 1 << idx
            yield mask

    def as_mask(self) -> int:
        """The complete assignment this map denotes; requires completeness."""
        if not self.is_complete():
            raise ValueError("partial map is not complete")
        return self._values

    @classmethod
    def blank(cls, n: int) -> "PartialInputMap":
        """``f_*``: everything unset."""
        return cls(n)

    @classmethod
    def from_mask(cls, n: int, mask: int) -> "PartialInputMap":
        return cls(n, {i: (mask >> i) & 1 for i in range(n)})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartialInputMap):
            return NotImplemented
        return (self.n, self._mask, self._values) == (other.n, other._mask, other._values)

    def __hash__(self) -> int:
        return hash((self.n, self._mask, self._values))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        chars = []
        for i in range(self.n):
            v = self[i]
            chars.append(UNSET if v == UNSET else str(v))
        return f"PartialInputMap({''.join(chars)})"


class InputDistribution:
    """A distribution over complete 0/1 input maps, with conditional access."""

    n: int

    def probability(self, mask: int) -> float:
        """P[input == mask]."""
        raise NotImplementedError

    def conditional_bit(self, f: PartialInputMap, idx: int) -> float:
        """P[input_idx = 1 | input refines f] (default: by enumeration)."""
        num = 0.0
        den = 0.0
        bit = 1 << idx
        for mask in f.consistent_masks():
            p = self.probability(mask)
            den += p
            if mask & bit:
                num += p
        if den == 0.0:
            raise ValueError("conditioning event has probability zero")
        return num / den


class IIDBernoulli(InputDistribution):
    """Inputs iid Bernoulli(q) — the Section 5 hypothesis class.

    Section 5 requires every input map possible and every conditional bit
    probability at least ``q >= 1/log n``; iid bits satisfy it trivially.
    """

    def __init__(self, n: int, q: float = 0.5) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0,1), got {q}")
        self.n = n
        self.q = q

    def probability(self, mask: int) -> float:
        ones = bin(mask & ((1 << self.n) - 1)).count("1")
        return (self.q**ones) * ((1.0 - self.q) ** (self.n - ones))

    def conditional_bit(self, f: PartialInputMap, idx: int) -> float:
        return self.q  # independence


def random_set(
    dist: InputDistribution,
    f: PartialInputMap,
    indices: Sequence[int],
    rng: RngLike = None,
) -> PartialInputMap:
    """RANDOMSET (Section 4.2): fix ``indices`` one at a time, each according
    to the conditional distribution given the refinement so far."""
    rng = derive_rng(rng)
    current = f
    for idx in indices:
        if current[idx] != UNSET:
            continue  # already set; conditioning makes this a no-op
        p1 = dist.conditional_bit(current, idx)
        val = 1 if rng.random() < p1 else 0
        current = current.refine({idx: val})
    return current


@dataclass(frozen=True)
class GenerateResult:
    """Output of :func:`generate`."""

    final_map: PartialInputMap  # complete
    trajectory: Tuple[Tuple[float, PartialInputMap], ...]  # (t, f_t) pairs
    total_steps: float


def generate(
    refine: Callable[[float, PartialInputMap, Any], Tuple[PartialInputMap, float]],
    dist: InputDistribution,
    n: int,
    T: float,
    rng: RngLike = None,
) -> GenerateResult:
    """GENERATE (Section 4.3).

    Repeatedly calls ``refine(t, f, rng)`` until the accumulated step count
    reaches ``T``, then completes the input with RANDOMSET.  By Lemma 4.1
    (all fixing goes through RANDOMSET) the returned complete input map is
    distributed exactly according to ``dist`` — the tests check this.
    """
    rng = derive_rng(rng)
    f = PartialInputMap.blank(n)
    t = 0.0
    trajectory: List[Tuple[float, PartialInputMap]] = [(0.0, f)]
    guard = 0
    while t <= T:
        f, x = refine(t, f, rng)
        if x < 0:
            raise ValueError(f"REFINE returned negative step count {x}")
        t += max(x, 1.0)  # a phase takes at least one big-step
        trajectory.append((t, f))
        guard += 1
        if guard > 10_000:
            raise RuntimeError("GENERATE failed to reach T; REFINE stalled")
    final = random_set(dist, f, f.unset_indices(), rng)
    return GenerateResult(final_map=final, trajectory=tuple(trajectory), total_steps=t)


# ---------------------------------------------------------------------------
# White-box execution oracle (Section 5.1 definitions)
# ---------------------------------------------------------------------------

class GSMOracle:
    """Brute-force oracle for Trace / States / Know / Aff / Cert.

    ``algorithm(machine, bits)`` must be a *deterministic* function of its
    input bits (fix any internal seeds) running on the provided GSM.  The
    oracle executes it on all ``2^n`` inputs up front (so keep ``n <= ~12``)
    and answers the Section 5.1 queries by set computations over the stored
    traces.

    Traces follow the paper's definitions:

    * ``Trace(p, t, f)`` for a processor: the tuple of per-phase read
      observations (sets of (cell, contents) pairs) up to big-step ``t``;
    * ``Trace(c, t, f)`` for a cell: its contents at big-step ``t``.

    Phases are used as the time unit (each phase here is >= 1 big-step;
    using phases makes the oracle exact for algorithms whose phases are
    single big-steps, which all the shipped demos are).
    """

    def __init__(
        self,
        algorithm: Callable[[GSM, List[int]], Any],
        n: int,
        params: Optional[GSMParams] = None,
    ) -> None:
        if not 1 <= n <= 14:
            raise ValueError(f"GSMOracle needs 1 <= n <= 14, got {n}")
        self.n = n
        self.params = params if params is not None else GSMParams()
        self.n_phases = 0
        # proc_traces[mask][p] = tuple over phases of frozenset((cell, repr(content)))
        self.proc_traces: List[Dict[int, Tuple]] = []
        # cell_contents[mask][t][cell] = repr(content) after phase t
        self.cell_contents: List[List[Dict[int, str]]] = []
        self.processors: set = set()
        self.cells: set = set()

        for mask in range(1 << n):
            bits = [(mask >> i) & 1 for i in range(n)]
            machine = GSM(self.params, record_trace=True, record_snapshots=True, seed=0)
            algorithm(machine, bits)
            self.n_phases = max(self.n_phases, len(machine.traces))
            per_proc: Dict[int, List[FrozenSet]] = {}
            for t, trace in enumerate(machine.traces):
                snapshot_before = machine.snapshots[t - 1] if t > 0 else {}
                for proc, addrs in trace.reads.items():
                    obs = frozenset(
                        (addr, repr(snapshot_before.get(addr))) for addr in addrs
                    )
                    per_proc.setdefault(proc, [None] * len(machine.traces))[t] = obs
                for proc in trace.writes:
                    per_proc.setdefault(proc, [None] * len(machine.traces))
            self.proc_traces.append(
                {p: tuple(obs_list) for p, obs_list in per_proc.items()}
            )
            self.cell_contents.append(
                [
                    {addr: repr(val) for addr, val in snap.items()}
                    for snap in machine.snapshots
                ]
            )
            self.processors.update(per_proc.keys())
            for snap in machine.snapshots:
                self.cells.update(snap.keys())

    # -- trace accessors -----------------------------------------------------

    def proc_trace(self, proc: int, t: int, mask: int) -> Tuple:
        """Trace(p, t, f): read observations of ``proc`` through phase t.

        Per the paper's definition a processor's trace is its *read*
        observations only; a processor that issued no reads has the all-null
        trace whether or not it wrote anything.
        """
        full = self.proc_traces[mask].get(proc, ())
        padded = tuple(full) + (None,) * max(0, t - len(full))
        return (proc,) + padded[:t]

    def cell_trace(self, cell: int, t: int, mask: int) -> Tuple:
        """Trace(c, t, f): contents of ``cell`` after phase t (t >= 1)."""
        if t == 0:
            return (cell, None)
        snaps = self.cell_contents[mask]
        idx = min(t, len(snaps)) - 1
        return (cell, snaps[idx].get(cell))

    def _trace(self, v: Tuple[str, int], t: int, mask: int) -> Tuple:
        kind, ident = v
        if kind == "proc":
            return self.proc_trace(ident, t, mask)
        if kind == "cell":
            return self.cell_trace(ident, t, mask)
        raise ValueError(f"entity must be ('proc', id) or ('cell', id), got {v}")

    # -- Section 5.1 queries ---------------------------------------------------

    def states(self, v: Tuple[str, int], t: int, f: PartialInputMap) -> Dict[Tuple, List[int]]:
        """States(v, t, e): distinct traces of v over refinements of f,
        mapped to the input masks producing each trace."""
        out: Dict[Tuple, List[int]] = {}
        for mask in f.consistent_masks():
            out.setdefault(self._trace(v, t, mask), []).append(mask)
        return out

    def know(self, v: Tuple[str, int], t: int, f: PartialInputMap) -> FrozenSet[int]:
        """Know(v, t, e): the minimal junta support of v's trace over
        refinements of f — input i belongs iff flipping i alone (within the
        refinement set) can change the trace."""
        support = set()
        unset = f.unset_indices()
        masks = list(f.consistent_masks())
        traces = {mask: self._trace(v, t, mask) for mask in masks}
        for idx in unset:
            bit = 1 << idx
            for mask in masks:
                if mask & bit:
                    continue
                if traces[mask] != traces[mask | bit]:
                    support.add(idx)
                    break
        return frozenset(support)

    def aff_proc(self, i: int, t: int, f: PartialInputMap) -> FrozenSet[int]:
        """AffProc(i, t, e): processors whose Know set contains input i."""
        return frozenset(
            p for p in self.processors if i in self.know(("proc", p), t, f)
        )

    def aff_cell(self, i: int, t: int, f: PartialInputMap) -> FrozenSet[int]:
        """AffCell(i, t, e): cells whose Know set contains input i."""
        return frozenset(
            c for c in self.cells if i in self.know(("cell", c), t, f)
        )

    def cert(self, v: Tuple[str, int], t: int, full: PartialInputMap) -> FrozenSet[int]:
        """Cert(v, t, f): minimal (lexicographically smallest) input set whose
        values under the complete map f force v's trace."""
        if not full.is_complete():
            raise ValueError("Cert requires a complete input map")
        target_mask = full.as_mask()
        target = self._trace(v, t, target_mask)
        for size in range(self.n + 1):
            for subset in combinations(range(self.n), size):
                fixed = {i: (target_mask >> i) & 1 for i in subset}
                partial = PartialInputMap(self.n, fixed)
                if all(
                    self._trace(v, t, m) == target for m in partial.consistent_masks()
                ):
                    return frozenset(subset)
        raise AssertionError("full set always certifies")  # pragma: no cover
