"""The paper's lower bounds, executable.

Three layers:

* :mod:`repro.lowerbounds.formulas` — every Omega/Theta entry of the four
  Table 1 sub-tables (and the underlying GSM theorems) as plain functions of
  the machine parameters, plus a registry the bench harness iterates over.
* Proof machinery, runnable on concrete algorithms at small ``n``:

  - :mod:`repro.lowerbounds.degree_argument` — the polynomial-degree
    recurrence of Theorems 3.1 / 7.2 / 7.3, replayed over real GSM traces;
  - :mod:`repro.lowerbounds.adversary` — the Section 4 Random Adversary
    framework (partial input maps, RANDOMSET, GENERATE);
  - :mod:`repro.lowerbounds.refine_lac` — the Section 5 general GSM
    engine (Know / AffProc / AffCell tracking, t-goodness);
  - :mod:`repro.lowerbounds.refine_or` — the Section 7 modified adversary
    (input-map *sets*, the H_i distributions, RANDOMRESTRICT / RANDOMFIX);
  - :mod:`repro.lowerbounds.influence` — trace-based influence cones: the
    Theorem 3.3 counting argument ("at most g^T processors can obtain
    information about an input bit"), checkable on full-scale runs;
  - :mod:`repro.lowerbounds.yao` — Theorem 2.1 as an exactly evaluable
    distributional game over decision strategies.

* :mod:`repro.lowerbounds.clb` — Section 6's Chromatic Load Balancing:
  the problem, the ECLB strengthening (Claim 6.1) and the Theorem 6.1
  reductions to Load Balancing, LAC and Padded Sort.
"""

from repro.lowerbounds.formulas import ALL_BOUNDS, Bound, bounds_for

__all__ = ["ALL_BOUNDS", "Bound", "bounds_for"]
