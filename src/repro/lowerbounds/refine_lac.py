"""The Section 5 general GSM lower-bound engine, executable at small n.

Section 5 defines, for a deterministic GSM algorithm and a partial input
map ``f`` at big-step ``t``:

* the *t-goodness* conditions (degree / state-count / Know-size / Aff-size /
  set-input-count thresholds ``d_t``, ``k_t``, ``r_t``), and
* the REFINE procedure that (a) forces a maximum-fan-out processor to
  actually issue its reads/writes, (b) forces a maximum-contention cell to
  actually be hit, fixing inputs only through RANDOMSET.

This module implements both against the white-box
:class:`~repro.lowerbounds.adversary.GSMOracle`.  At paper scale the
thresholds are astronomically loose; at demo scale (n <= 12) they would be
vacuous, so :func:`goodness_report` reports the *measured* quantities next
to the thresholds, and the property the tests assert is the structural one
the proof actually uses: along a REFINE trajectory the Know/Aff sets grow at
most multiplicatively per phase (Lemma 5.1's recurrences), and REFINE fixes
inputs only via RANDOMSET (so Lemma 4.1 applies and the generated input is
honestly distributed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lowerbounds.adversary import (
    GSMOracle,
    IIDBernoulli,
    InputDistribution,
    PartialInputMap,
    random_set,
)
from repro.util.seeding import RngLike, derive_rng

__all__ = [
    "section5_thresholds",
    "GoodnessReport",
    "goodness_report",
    "refine_step",
    "run_adversary",
]


def section5_thresholds(
    t: int,
    n: int,
    mu: float,
    nu: float,
) -> Tuple[float, float, float]:
    """The Section 5 threshold sequences ``(d_t, k_t, r_t)``.

    ``d_t = nu (mu+1)^{2t}``, ``k_t = 2^{nu (mu+1)^{4(t+1)}}``,
    ``r_t = t n^{2/3}``.  ``k_t`` overflows quickly; it is returned as a
    float (possibly ``inf``), which is fine for threshold comparisons.
    """
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    d_t = nu * (mu + 1.0) ** (2 * t)
    exponent = nu * (mu + 1.0) ** (4 * (t + 1))
    k_t = float("inf") if exponent > 1000 else 2.0**exponent
    r_t = t * n ** (2.0 / 3.0)
    return d_t, k_t, r_t


@dataclass(frozen=True)
class GoodnessReport:
    """Measured Section 5 quantities for one (t, f) against the thresholds."""

    t: int
    max_states: int
    max_know: int
    max_aff_proc: int
    max_aff_cell: int
    inputs_set: int
    d_t: float
    k_t: float
    r_t: float

    @property
    def is_t_good(self) -> bool:
        """Conditions (2)-(5) of the Section 5 t-goodness definition.

        (Condition (1), the degree bound, is covered by the degree-argument
        engine; the state/Know/Aff conditions are the ones REFINE maintains.)
        """
        return (
            self.max_states <= self.k_t
            and self.max_know <= self.k_t
            and self.max_aff_proc <= self.k_t
            and self.max_aff_cell <= self.k_t
            and self.inputs_set <= max(self.r_t, 0.0) + 1e-9
        )


def goodness_report(
    oracle: GSMOracle,
    f: PartialInputMap,
    t: int,
    mu: Optional[float] = None,
    nu: Optional[float] = None,
) -> GoodnessReport:
    """Measure max |States|, |Know|, |AffProc|, |AffCell| over all entities."""
    if mu is None:
        mu = oracle.params.mu
    if nu is None:
        nu = float(oracle.params.gamma)
    max_states = 0
    max_know = 0
    for p in oracle.processors:
        max_states = max(max_states, len(oracle.states(("proc", p), t, f)))
        max_know = max(max_know, len(oracle.know(("proc", p), t, f)))
    for c in oracle.cells:
        max_states = max(max_states, len(oracle.states(("cell", c), t, f)))
        max_know = max(max_know, len(oracle.know(("cell", c), t, f)))
    max_ap = 0
    max_ac = 0
    for i in f.unset_indices():
        max_ap = max(max_ap, len(oracle.aff_proc(i, t, f)))
        max_ac = max(max_ac, len(oracle.aff_cell(i, t, f)))
    d_t, k_t, r_t = section5_thresholds(t, oracle.n, mu, nu)
    return GoodnessReport(
        t=t,
        max_states=max_states,
        max_know=max_know,
        max_aff_proc=max_ap,
        max_aff_cell=max_ac,
        inputs_set=f.set_count,
        d_t=d_t,
        k_t=k_t,
        r_t=r_t,
    )


def _max_proc(oracle: GSMOracle, t: int, f: PartialInputMap) -> Tuple[Optional[int], int, Optional[int]]:
    """MaxProc(t, e): (processor, max read/write count, witnessing mask).

    The fan-out of processor p at phase t under complete input ``mask`` is
    the number of distinct read observations plus writes it issues in phase
    t; we measure reads via the trace (writes are folded into cell traces,
    so reads dominate for the shipped demo algorithms).
    """
    best: Tuple[Optional[int], int, Optional[int]] = (None, 0, None)
    for mask in f.consistent_masks():
        traces = oracle.proc_traces[mask]
        for p, obs in traces.items():
            if t < len(obs) and obs[t] is not None:
                fan = len(obs[t])
                if fan > best[1]:
                    best = (p, fan, mask)
    return best


def _max_cell(oracle: GSMOracle, t: int, f: PartialInputMap) -> Tuple[Optional[int], int, Optional[int]]:
    """MaxCell(t, e): (cell, max read contention at phase t, witnessing mask)."""
    best: Tuple[Optional[int], int, Optional[int]] = (None, 0, None)
    for mask in f.consistent_masks():
        readers: Dict[int, int] = {}
        traces = oracle.proc_traces[mask]
        for p, obs in traces.items():
            if t < len(obs) and obs[t] is not None:
                for cell, _ in obs[t]:
                    readers[cell] = readers.get(cell, 0) + 1
        for cell, count in readers.items():
            if count > best[1]:
                best = (cell, count, mask)
    return best


def refine_step(
    oracle: GSMOracle,
    t: int,
    f: PartialInputMap,
    dist: InputDistribution,
    rng: RngLike = None,
) -> Tuple[PartialInputMap, float]:
    """One REFINE call, following the Section 5 pseudocode's structure.

    Lines (4)-(10): repeatedly pick MaxProc, RANDOMSET the inputs of its
    certificate, accept once the random values realise the witnessing map.
    Lines (12)-(21): same for MaxCell.  Returns ``(f', x)`` with ``x`` the
    certified number of big-steps for the phase.
    """
    rng = derive_rng(rng)
    e = f
    params = oracle.params

    # --- force a maximum-fan-out processor (lines 4-10) ---
    max_rw = 0
    for _ in range(64):  # Lemma 5.3 bounds the retries w.h.p.; cap hard here
        p, fan, witness = _max_proc(oracle, t, e)
        if p is None or witness is None:
            break
        full = PartialInputMap.from_mask(oracle.n, witness)
        cert = sorted(oracle.cert(("proc", p), t + 1, full))
        cert_unset = [i for i in cert if e[i] == "*"]
        e2 = random_set(dist, e, cert_unset, rng)
        if all(e2[i] == full[i] for i in cert):
            e = e2
            max_rw = fan
            break
        e = e2  # inputs were honestly fixed either way; retry
    else:  # pragma: no cover - loop cap
        pass

    # --- force a maximum-contention cell (lines 12-21) ---
    max_contention = 1
    for _ in range(64):
        c, contention, witness = _max_cell(oracle, t, e)
        if c is None or witness is None:
            break
        full = PartialInputMap.from_mask(oracle.n, witness)
        # Certificates of all processors that access c under the witness.
        readers = []
        traces = oracle.proc_traces[witness]
        for p, obs in traces.items():
            if t < len(obs) and obs[t] is not None and any(cell == c for cell, _ in obs[t]):
                readers.append(p)
        needed: set = set()
        for p in readers:
            needed.update(oracle.cert(("proc", p), t + 1, full))
        needed_unset = [i for i in sorted(needed) if e[i] == "*"]
        e2 = random_set(dist, e, needed_unset, rng)
        if all(e2[i] == full[i] for i in sorted(needed)):
            e = e2
            max_contention = max(1, contention)
            break
        e = e2
    else:  # pragma: no cover
        pass

    x = max(
        math.ceil(max_contention / params.beta),
        math.ceil(max(max_rw, 1) / params.alpha),
        1,
    )
    return e, float(x)


def run_adversary(
    oracle: GSMOracle,
    T: int,
    q: float = 0.5,
    rng: RngLike = None,
) -> Tuple[PartialInputMap, List[GoodnessReport]]:
    """Drive REFINE for up to T phases, reporting goodness at each step.

    Returns the final (possibly still partial) map and per-step reports.
    """
    rng = derive_rng(rng)
    dist = IIDBernoulli(oracle.n, q)
    f = PartialInputMap.blank(oracle.n)
    reports = [goodness_report(oracle, f, 0)]
    t = 0
    phase = 0
    while t < T and phase < oracle.n_phases:
        f, x = refine_step(oracle, phase, f, dist, rng)
        t += int(x)
        phase += 1
        reports.append(goodness_report(oracle, f, min(phase, oracle.n_phases)))
    return f, reports
