"""Information-spread tracking (the counting argument of Theorem 3.3).

Theorem 3.3 bounds how fast knowledge of one input bit can spread: "in a
sequence of T memory request steps ... at most ``g^T`` processors can
obtain information about any single input bit".  The underlying object is
the *influence cone* of an input — the set of processors and cells whose
state could possibly depend on it — which grows per phase only through
reads of affected cells and writes by affected processors.

This module computes the influence cone from recorded
:class:`~repro.core.trace.PhaseTrace` objects by forward data-flow.  For an
algorithm whose access pattern does not depend on the input (oblivious,
like the combining trees) the single-run cone over-approximates the
oracle's semantic ``AffProc`` / ``AffCell`` sets (Section 5.1).  For
input-dependent algorithms (e.g. write tournaments, where only 1-holders
write) compute the cone over the *superposition* of all inputs' traces —
:func:`merge_traces` — since one run only witnesses the accesses that
input actually made, and a write's absence carries information too.  Either way the computation is linear in the
trace size, so ``g^T``-style growth ceilings can be checked on full-scale
executions far beyond the exhaustive oracle's reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.trace import PhaseTrace

__all__ = ["InfluenceCone", "influence_cone", "merge_traces", "spread_ceiling_ok"]


@dataclass(frozen=True)
class InfluenceCone:
    """Per-phase affected processor / cell sets for one input."""

    cells: Tuple[FrozenSet[int], ...]  # cells[t] = affected cells after phase t
    procs: Tuple[FrozenSet[int], ...]  # procs[t] = affected processors after phase t

    @property
    def phases(self) -> int:
        return len(self.cells) - 1

    def growth_factors(self) -> List[float]:
        """Per-phase growth of |cells| + |procs| (>= 1; the g^T argument
        bounds their product)."""
        sizes = [len(c) + len(p) for c, p in zip(self.cells, self.procs)]
        out = []
        for a, b in zip(sizes, sizes[1:]):
            out.append(b / a if a else float(b if b else 1.0))
        return out


def influence_cone(
    traces: Sequence[PhaseTrace],
    initial_cells: Iterable[int],
    initial_procs: Iterable[int] = (),
) -> InfluenceCone:
    """Forward data-flow of influence from the initial cells/processors.

    ``initial_cells`` holds the input (e.g. the input's memory cell);
    ``initial_procs`` are processors that know the input ab initio (the
    models let a processor hold its own input without a read — the
    tournament algorithms use this).  Per phase: a processor becomes
    affected by reading an affected cell (the cell's pre-phase content may
    depend on the input); a cell becomes affected when an affected
    processor writes it.  Reads and writes within one phase see pre-phase
    state, so reads are processed against the incoming cell set and writes
    extend the outgoing one.
    """
    cells = set(initial_cells)
    procs = set(initial_procs)
    cells_hist = [frozenset(cells)]
    procs_hist = [frozenset(procs)]
    for trace in traces:
        new_procs = set(procs)
        for proc, addrs in trace.reads.items():
            if any(a in cells for a in addrs):
                new_procs.add(proc)
        new_cells = set(cells)
        for proc, pairs in trace.writes.items():
            if proc in new_procs:
                new_cells.update(addr for addr, _ in pairs)
        procs = new_procs
        cells = new_cells
        cells_hist.append(frozenset(cells))
        procs_hist.append(frozenset(procs))
    return InfluenceCone(cells=tuple(cells_hist), procs=tuple(procs_hist))


def merge_traces(trace_runs: Sequence[Sequence[PhaseTrace]]) -> List[PhaseTrace]:
    """Superpose several runs' traces phase-wise (union of reads and writes).

    For an input-dependent algorithm the influence cone must be computed on
    the superposition of all runs, not per run: a write that happens on
    *some* inputs but not others carries information through its absence
    too, so a reader of that cell is affected even on runs where nothing
    was written.  Propagating over the merged trace captures exactly that
    (and is the reason the Section 5 proofs quantify MaxCell/MaxProc over
    all refinements rather than one input).

    Runs of different lengths are aligned at phase 0; missing phases
    contribute nothing.
    """
    if not trace_runs:
        raise ValueError("need at least one run")
    phases = max(len(run) for run in trace_runs)
    merged: List[PhaseTrace] = []
    for t in range(phases):
        reads: dict = {}
        writes: dict = {}
        for run in trace_runs:
            if t >= len(run):
                continue
            for proc, addrs in run[t].reads.items():
                seen = reads.setdefault(proc, [])
                for a in addrs:
                    if a not in seen:
                        seen.append(a)
            for proc, pairs in run[t].writes.items():
                seen = writes.setdefault(proc, [])
                for pair in pairs:
                    if pair not in seen:
                        seen.append(pair)
        merged.append(
            PhaseTrace(
                index=t,
                reads={p: tuple(a) for p, a in reads.items()},
                writes={p: tuple(w) for p, w in writes.items()},
            )
        )
    return merged


def spread_ceiling_ok(
    cone: InfluenceCone,
    per_phase_factor: float,
    initial: int = 1,
    slack: float = 1.0,
) -> bool:
    """Check the Theorem 3.3-style ceiling
    ``|affected(t)| <= slack * initial * (1 + factor)^t``.

    ``per_phase_factor`` should be the maximum per-phase fan-out the
    machine's cost budget admits (e.g. reads per processor + readers per
    cell within one phase of the algorithm's phase cost).
    """
    if per_phase_factor < 0:
        raise ValueError(f"factor must be non-negative, got {per_phase_factor}")
    bound = float(initial)
    for t in range(1, cone.phases + 1):
        bound *= 1.0 + per_phase_factor
        if len(cone.cells[t]) + len(cone.procs[t]) > slack * bound:
            return False
    return True
