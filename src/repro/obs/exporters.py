"""Exporters for cost-provenance records: JSONL streams and Chrome traces.

Two formats, two audiences:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — one
  :class:`~repro.obs.records.PhaseCostRecord` per line as JSON, for
  programmatic consumption (pandas, jq, downstream dashboards).  The
  round trip is exact: ``read_jsonl(write_jsonl(records, p)) == records``.
* **Chrome trace-event JSON** (:func:`write_chrome_trace`) — the
  ``traceEvents`` format consumed by Perfetto (https://ui.perfetto.dev)
  and ``chrome://tracing``: one complete ("X") event per phase laid out on
  the *simulated* time axis (1 cost unit = 1 microsecond), named by its
  dominant term, with the full term decomposition in ``args``.  Load the
  file in Perfetto and the run's cost structure is a timeline you can
  scrub: contention-bound phases, bandwidth-bound stretches, latency
  floors.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Sequence, Tuple, Union

from repro.obs.records import PhaseCostRecord

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "scheduler_trace_events",
    "write_scheduler_trace",
    "metrics_counter_events",
    "trace_span_events",
    "combined_trace_events",
    "write_combined_trace",
    "lane_pid",
    "lane_metadata_event",
    "TRACE_LANES",
    "PHASE_PID",
    "SCHEDULER_PID",
    "METRICS_PID",
    "SERVICE_PID",
]

PathOrFile = Union[str, IO[str]]


def _open_for(path_or_file: PathOrFile, mode: str):
    if isinstance(path_or_file, str):
        return open(path_or_file, mode, encoding="utf-8"), True
    return path_or_file, False


def write_jsonl(records: Iterable[PhaseCostRecord], path: PathOrFile) -> int:
    """Write one JSON object per record, newline-delimited; returns the count.

    ``path`` may be a filesystem path or an open text file object.
    """
    fh, owned = _open_for(path, "w")
    count = 0
    try:
        for rec in records:
            fh.write(json.dumps(rec.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    finally:
        if owned:
            fh.close()
    return count


def read_jsonl(path: PathOrFile) -> List[PhaseCostRecord]:
    """Parse a JSONL stream written by :func:`write_jsonl` back to records."""
    fh, owned = _open_for(path, "r")
    try:
        records: List[PhaseCostRecord] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"line {lineno} is not valid JSON: {exc}") from exc
            records.append(PhaseCostRecord.from_dict(data))
        return records
    finally:
        if owned:
            fh.close()


#: Simulated cost units per exported microsecond.  Trace-event timestamps
#: are microseconds; mapping one cost unit to one microsecond keeps phase
#: durations integer-free of rounding surprises at typical run sizes.
_US_PER_COST_UNIT = 1.0


#: The single source of truth for Perfetto lane (pid) allocation.  Every
#: exporter in this module draws its pid from this table, so the phase,
#: scheduler and metrics lanes can never collide however the writers are
#: combined — and each lane is labelled by a ``process_name`` metadata
#: event (:func:`lane_metadata_event`) rather than by bare pid numbers.
TRACE_LANES: Dict[str, Tuple[int, str]] = {
    "phase": (0, "repro.obs phase costs"),
    "scheduler": (1, "repro.sched campaign"),
    "metrics": (2, "repro.obs metrics"),
    "service": (3, "repro.serve distributed trace"),
}


def lane_pid(lane: str) -> int:
    """The pid assigned to a named lane (phase/scheduler/metrics/service)."""
    try:
        return TRACE_LANES[lane][0]
    except KeyError:
        raise ValueError(
            f"unknown trace lane {lane!r}; know {sorted(TRACE_LANES)}"
        ) from None


def lane_metadata_event(lane: str, pid: int = None) -> Dict[str, Any]:  # type: ignore[assignment]
    """The ``process_name`` metadata event labelling a lane's Perfetto row."""
    default_pid, name = TRACE_LANES[lane]
    return {
        "name": "process_name",
        "ph": "M",
        "pid": default_pid if pid is None else pid,
        "tid": 0,
        "args": {"name": name},
    }


def chrome_trace_events(
    records: Iterable[PhaseCostRecord],
    pid: int = None,  # type: ignore[assignment]
    tid: int = 0,
) -> List[Dict[str, Any]]:
    """Records -> trace-event dicts (``ph: "X"``), on the simulated clock.

    Events are laid end to end: phase *i* starts where phase *i-1* ended,
    so ``ts`` is the machine's cumulative simulated time at phase open and
    ``dur`` is the phase's charge.  ``ts`` is therefore monotone
    non-decreasing in emission order — the invariant the exporter tests
    pin.  Each event's ``args`` carries the term decomposition, the
    dominant term, the contention histogram and the live wall time.

    A record carrying injected-fault events additionally emits one instant
    event (``ph: "i"``, thread scope) per fault at the phase's open
    timestamp, named ``fault: <kind>`` with the full fault dict in
    ``args`` — so a chaos run's Perfetto timeline pins each injection to
    the phase it hit.
    """
    if pid is None:
        pid = lane_pid("phase")
    events: List[Dict[str, Any]] = []
    clock = 0.0
    for rec in records:
        dur = rec.cost * _US_PER_COST_UNIT
        events.append(
            {
                "name": f"phase {rec.index}: {rec.dominant}",
                "cat": rec.model,
                "ph": "X",
                "ts": clock,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": {
                    "terms": dict(rec.terms),
                    "dominant": rec.dominant,
                    "cost": rec.cost,
                    "contention": {str(k): v for k, v in rec.contention.items()},
                    "wall_time_s": rec.wall_time,
                },
            }
        )
        for fault in rec.faults:
            events.append(
                {
                    "name": f"fault: {fault.get('kind', '?')}",
                    "cat": "fault",
                    "ph": "i",
                    "s": "t",
                    "ts": clock,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(fault),
                }
            )
        clock += dur
    return events


#: Lane pids, exported as constants for callers that pass explicit pids.
#: Phase cost records export under pid 0, campaign task spans under pid 1,
#: metrics counters under pid 2 — three Perfetto processes that never
#: interleave on one row (see :data:`TRACE_LANES`).
PHASE_PID = lane_pid("phase")
SCHEDULER_PID = lane_pid("scheduler")
METRICS_PID = lane_pid("metrics")
SERVICE_PID = lane_pid("service")

#: One Perfetto thread row per span kind, outermost first, so a trace
#: reads top-down: HTTP request over job over tasks over executions.
_TRACE_KIND_ROWS: Dict[str, int] = {
    "request": 0,
    "job": 1,
    "task": 2,
    "exec": 3,
    "internal": 4,
}


def _flow_id(span_id: str) -> int:
    """A stable positive 63-bit flow id derived from a span id."""
    try:
        return int(span_id, 16) & 0x7FFFFFFFFFFFFFFF
    except (TypeError, ValueError):
        return abs(hash(span_id)) & 0x7FFFFFFFFFFFFFFF


def _trace_layout(
    rows: List[Dict[str, Any]],
    t0: float = None,  # type: ignore[assignment]
) -> List[Tuple[Dict[str, Any], float, float, int]]:
    """Place ``repro.trace/1`` span dicts on the wall-clock axis.

    Returns ``(row, ts_us, dur_us, tid)`` per span, with timestamps
    relative to ``t0`` (default: the earliest span start in the batch).
    """
    if t0 is None:
        starts = [float(r.get("start") or 0.0) for r in rows]
        t0 = min(starts) if starts else 0.0
    out = []
    for row in rows:
        start = float(row.get("start") or 0.0)
        end = float(row.get("end") or start)
        ts = (start - t0) * 1e6
        dur = max(0.0, (end - start) * 1e6)
        tid = _TRACE_KIND_ROWS.get(str(row.get("kind", "internal")), 4)
        out.append((row, ts, dur, tid))
    return out


def trace_span_events(
    rows: Iterable[Dict[str, Any]],
    pid: int = SERVICE_PID,
    t0: float = None,  # type: ignore[assignment]
) -> List[Dict[str, Any]]:
    """``repro.trace/1`` span dicts -> service-lane events with flow links.

    Each finished span becomes a complete ("X") event on the wall-clock
    axis (earliest span = t=0), one thread row per span kind (request /
    job / task / exec).  Every parent-child edge *within the batch*
    additionally emits a Perfetto flow pair (``ph: "s"`` at the parent,
    ``ph: "f"`` at the child), so clicking an HTTP request span in
    https://ui.perfetto.dev draws arrows down through the job, its
    tasks, and the remote executions that served them — across hosts,
    when the batch came from ``python -m repro trace merge``.
    """
    rows = list(rows)
    events: List[Dict[str, Any]] = [lane_metadata_event("service", pid=pid)]
    for kind, tid in sorted(_TRACE_KIND_ROWS.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"{kind} spans"},
            }
        )
    layout = _trace_layout(rows, t0=t0)
    by_span_id = {
        str(row.get("span_id")): (row, ts, dur, tid)
        for row, ts, dur, tid in layout
        if row.get("span_id")
    }
    for row, ts, dur, tid in layout:
        events.append(
            {
                "name": str(row.get("name", "?")),
                "cat": f"trace.{row.get('kind', 'internal')}",
                "ph": "X",
                "ts": ts,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": {
                    "trace_id": row.get("trace_id"),
                    "span_id": row.get("span_id"),
                    "parent_span_id": row.get("parent_span_id"),
                    "kind": row.get("kind"),
                    "status": row.get("status"),
                    "host": row.get("host"),
                    "attrs": dict(row.get("attrs") or {}),
                },
            }
        )
        parent = by_span_id.get(str(row.get("parent_span_id") or ""))
        if parent is not None:
            p_row, p_ts, p_dur, p_tid = parent
            flow = _flow_id(str(row.get("span_id")))
            common = {"cat": "trace.flow", "name": "parent", "id": flow, "pid": pid}
            # The flow-start timestamp must land inside the parent slice;
            # clamp to its end for children that start after it closed
            # (a job span outliving its request span, e.g.).
            events.append(
                dict(common, ph="s", ts=min(max(p_ts, ts), p_ts + p_dur), tid=p_tid)
            )
            events.append(dict(common, ph="f", bp="e", ts=ts, tid=tid))
    return events


def scheduler_trace_events(
    spans: Iterable[Dict[str, Any]],
    pid: int = SCHEDULER_PID,
) -> List[Dict[str, Any]]:
    """Campaign task spans -> scheduler-lane trace events.

    ``spans`` are the ``to_dict()`` forms of
    :class:`repro.sched.campaign.TaskSpan` (plain mappings keep this
    module free of a ``repro.sched`` import).  Executed and cached tasks
    become complete ("X") events on the *wall-clock* axis (campaign-start
    relative, seconds -> microseconds), one Perfetto thread row per pool
    worker (cached/inline tasks on worker row 0, the scheduler's own
    lane); failed and skipped tasks additionally emit an instant event so
    the holes in a campaign timeline are labelled.  Metadata events name
    the process "repro.sched campaign" and each worker row.
    """
    events: List[Dict[str, Any]] = [lane_metadata_event("scheduler", pid=pid)]
    named_tids = set()
    for span in spans:
        status = span.get("status", "?")
        tid = int(span.get("worker") or 0)
        if tid not in named_tids:
            named_tids.add(tid)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"worker {tid}" if tid else "scheduler"},
                }
            )
        ts = float(span.get("start") or 0.0) * 1e6
        args = {
            "key": span.get("key"),
            "status": status,
            "attempts": span.get("attempts"),
            "error": span.get("error"),
        }
        if status in ("done", "cached"):
            dur = max(0.0, float(span.get("end") or 0.0) * 1e6 - ts)
            events.append(
                {
                    "name": f"{span.get('name', '?')}"
                            + (" [cached]" if status == "cached" else ""),
                    "cat": "task",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": f"{status}: {span.get('name', '?')}",
                    "cat": "scheduler",
                    "ph": "i",
                    "s": "t",
                    "ts": max(ts, float(span.get("end") or 0.0) * 1e6),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return events


def write_scheduler_trace(
    spans: Iterable[Dict[str, Any]],
    path: PathOrFile,
    pid: int = SCHEDULER_PID,
) -> int:
    """Write campaign task spans as Chrome trace-event JSON; returns count.

    Same container format as :func:`write_chrome_trace`; load the file at
    https://ui.perfetto.dev to scrub a campaign's scheduling timeline —
    per-worker occupancy, cache hits, retries, and failure holes.
    """
    events = scheduler_trace_events(spans, pid=pid)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.sched",
            "clock": "campaign wall time (1 second = 1e6 us)",
        },
    }
    fh, owned = _open_for(path, "w")
    try:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(events)


def write_chrome_trace(
    records: Iterable[PhaseCostRecord],
    path: PathOrFile,
    pid: int = None,  # type: ignore[assignment]
    tid: int = 0,
) -> int:
    """Write records as Chrome trace-event JSON; returns the event count.

    The output is the object form (``{"traceEvents": [...]}``) with
    ``displayTimeUnit`` set, which both Perfetto and ``chrome://tracing``
    accept.  Open https://ui.perfetto.dev and drag the file in.
    """
    events = chrome_trace_events(records, pid=pid, tid=tid)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "clock": "simulated model time (1 cost unit = 1us)"},
    }
    fh, owned = _open_for(path, "w")
    try:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(events)


def metrics_counter_events(
    snapshots: Iterable[Any],
    pid: int = None,  # type: ignore[assignment]
) -> List[Dict[str, Any]]:
    """Metrics snapshots -> Perfetto counter-lane events (``ph: "C"``).

    ``snapshots`` are :class:`repro.obs.snapshot.MetricsSnapshot` objects
    (or their ``to_dict()`` forms).  Each counter/gauge series becomes one
    counter track named ``metric{k=v,...}``; each histogram contributes
    ``metric.count`` and ``metric.mean`` tracks.  Timestamps are the
    snapshots' run-relative wall clock (seconds -> microseconds) — the
    same axis as the scheduler spans, so the counters line up under a
    campaign's task timeline in one Perfetto view.
    """
    if pid is None:
        pid = lane_pid("metrics")
    events: List[Dict[str, Any]] = [lane_metadata_event("metrics", pid=pid)]
    for snap in snapshots:
        data = snap if isinstance(snap, dict) else snap.to_dict()
        ts = float(data.get("t_rel", 0.0)) * 1e6
        for metric in data.get("metrics", ()):
            name = metric.get("name", "?")
            kind = metric.get("type", "?")
            for sample in metric.get("samples", ()):
                labels = sample.get("labels", {})
                series = name + (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels else ""
                )
                if kind == "histogram":
                    count = int(sample.get("count", 0))
                    total = float(sample.get("sum", 0.0))
                    values = {
                        f"{series}.count": float(count),
                        f"{series}.mean": (total / count) if count else 0.0,
                    }
                else:
                    values = {series: float(sample.get("value", 0.0))}
                for track, value in values.items():
                    events.append(
                        {
                            "name": track,
                            "cat": "metrics",
                            "ph": "C",
                            "ts": ts,
                            "pid": pid,
                            "tid": 0,
                            "args": {"value": value},
                        }
                    )
    return events


def combined_trace_events(
    spans: Iterable[Dict[str, Any]] = (),
    snapshots: Iterable[Any] = (),
    phase_lanes: Sequence[Tuple[str, Iterable[PhaseCostRecord]]] = (),
    trace_spans: Iterable[Dict[str, Any]] = (),
) -> List[Dict[str, Any]]:
    """Merge scheduler spans, metrics snapshots, phase records and
    distributed-trace spans into one event list — the
    single-Perfetto-view export of a campaign run.

    ``phase_lanes`` is a sequence of ``(label, records)`` pairs (typically
    one per campaign task that returned ``cost_records``); each pair gets
    its own ``tid`` row under the phase lane, labelled by a
    ``thread_name`` metadata event.  ``trace_spans`` are ``repro.trace/1``
    span dicts (:func:`trace_span_events`); when a phase record carries a
    ``trace`` stamp whose span is in the batch, a Perfetto flow pair
    links the exec span down to that phase row, completing the HTTP
    request -> job -> task -> exec -> phase chain.  The four lanes keep
    their pids from :data:`TRACE_LANES`, so nothing collides.

    Note the clocks differ by design: scheduler spans, metrics counters
    and trace spans share the wall clock, while each phase row runs on
    its task's *simulated* cost clock (1 cost unit = 1 us).
    """
    events: List[Dict[str, Any]] = []
    span_list = list(spans)
    if span_list:
        events.extend(scheduler_trace_events(span_list))
    snap_list = list(snapshots)
    if snap_list:
        events.extend(metrics_counter_events(snap_list))
    trace_list = list(trace_spans)
    trace_locs: Dict[str, Tuple[float, float, int]] = {}
    if trace_list:
        events.extend(trace_span_events(trace_list))
        trace_locs = {
            str(row.get("span_id")): (ts, dur, tid)
            for row, ts, dur, tid in _trace_layout(trace_list)
            if row.get("span_id")
        }
    phase_pid = lane_pid("phase")
    if phase_lanes:
        events.append(lane_metadata_event("phase"))
        flow_seq = 0
        for tid, (label, records) in enumerate(phase_lanes):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": phase_pid,
                    "tid": tid,
                    "args": {"name": str(label)},
                }
            )
            record_list = list(records)
            events.extend(chrome_trace_events(record_list, pid=phase_pid, tid=tid))
            # chrome_trace_events lays phases end to end from t=0; walk
            # the same clock here to aim each flow at its phase slice.
            clock = 0.0
            for rec in record_list:
                dur = rec.cost * _US_PER_COST_UNIT
                stamp = getattr(rec, "trace", None)
                src = trace_locs.get(str((stamp or {}).get("span_id")))
                if src is not None:
                    s_ts, s_dur, s_tid = src
                    flow_seq += 1
                    flow = _flow_id(f"{stamp['span_id']}:phase:{flow_seq}")
                    common = {
                        "cat": "trace.flow",
                        "name": "phase",
                        "id": flow,
                    }
                    events.append(
                        dict(common, ph="s", ts=s_ts + s_dur / 2,
                             pid=SERVICE_PID, tid=s_tid)
                    )
                    events.append(
                        dict(common, ph="f", bp="e", ts=clock,
                             pid=phase_pid, tid=tid)
                    )
                clock += dur
    return events


def write_combined_trace(
    path: PathOrFile,
    spans: Iterable[Dict[str, Any]] = (),
    snapshots: Iterable[Any] = (),
    phase_lanes: Sequence[Tuple[str, Iterable[PhaseCostRecord]]] = (),
    trace_spans: Iterable[Dict[str, Any]] = (),
) -> int:
    """Write the merged campaign trace (spans + counters + phase rows +
    distributed-trace spans with flow links).

    Same container format as :func:`write_chrome_trace`; load the file at
    https://ui.perfetto.dev and a single demo-campaign run shows its
    scheduling timeline, its metrics counter lanes, the per-task
    simulated phase timelines and (on traced runs) the distributed span
    tree stacked in one view.  Returns the event count.
    """
    events = combined_trace_events(
        spans=spans, snapshots=snapshots, phase_lanes=phase_lanes,
        trace_spans=trace_spans,
    )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "clock": (
                "scheduler/metrics: campaign wall time; "
                "phase rows: simulated model time (1 cost unit = 1us)"
            ),
        },
    }
    fh, owned = _open_for(path, "w")
    try:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(events)
