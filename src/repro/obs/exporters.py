"""Exporters for cost-provenance records: JSONL streams and Chrome traces.

Two formats, two audiences:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — one
  :class:`~repro.obs.records.PhaseCostRecord` per line as JSON, for
  programmatic consumption (pandas, jq, downstream dashboards).  The
  round trip is exact: ``read_jsonl(write_jsonl(records, p)) == records``.
* **Chrome trace-event JSON** (:func:`write_chrome_trace`) — the
  ``traceEvents`` format consumed by Perfetto (https://ui.perfetto.dev)
  and ``chrome://tracing``: one complete ("X") event per phase laid out on
  the *simulated* time axis (1 cost unit = 1 microsecond), named by its
  dominant term, with the full term decomposition in ``args``.  Load the
  file in Perfetto and the run's cost structure is a timeline you can
  scrub: contention-bound phases, bandwidth-bound stretches, latency
  floors.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Union

from repro.obs.records import PhaseCostRecord

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
    "scheduler_trace_events",
    "write_scheduler_trace",
]

PathOrFile = Union[str, IO[str]]


def _open_for(path_or_file: PathOrFile, mode: str):
    if isinstance(path_or_file, str):
        return open(path_or_file, mode, encoding="utf-8"), True
    return path_or_file, False


def write_jsonl(records: Iterable[PhaseCostRecord], path: PathOrFile) -> int:
    """Write one JSON object per record, newline-delimited; returns the count.

    ``path`` may be a filesystem path or an open text file object.
    """
    fh, owned = _open_for(path, "w")
    count = 0
    try:
        for rec in records:
            fh.write(json.dumps(rec.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    finally:
        if owned:
            fh.close()
    return count


def read_jsonl(path: PathOrFile) -> List[PhaseCostRecord]:
    """Parse a JSONL stream written by :func:`write_jsonl` back to records."""
    fh, owned = _open_for(path, "r")
    try:
        records: List[PhaseCostRecord] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"line {lineno} is not valid JSON: {exc}") from exc
            records.append(PhaseCostRecord.from_dict(data))
        return records
    finally:
        if owned:
            fh.close()


#: Simulated cost units per exported microsecond.  Trace-event timestamps
#: are microseconds; mapping one cost unit to one microsecond keeps phase
#: durations integer-free of rounding surprises at typical run sizes.
_US_PER_COST_UNIT = 1.0


def chrome_trace_events(
    records: Iterable[PhaseCostRecord],
    pid: int = 0,
    tid: int = 0,
) -> List[Dict[str, Any]]:
    """Records -> trace-event dicts (``ph: "X"``), on the simulated clock.

    Events are laid end to end: phase *i* starts where phase *i-1* ended,
    so ``ts`` is the machine's cumulative simulated time at phase open and
    ``dur`` is the phase's charge.  ``ts`` is therefore monotone
    non-decreasing in emission order — the invariant the exporter tests
    pin.  Each event's ``args`` carries the term decomposition, the
    dominant term, the contention histogram and the live wall time.

    A record carrying injected-fault events additionally emits one instant
    event (``ph: "i"``, thread scope) per fault at the phase's open
    timestamp, named ``fault: <kind>`` with the full fault dict in
    ``args`` — so a chaos run's Perfetto timeline pins each injection to
    the phase it hit.
    """
    events: List[Dict[str, Any]] = []
    clock = 0.0
    for rec in records:
        dur = rec.cost * _US_PER_COST_UNIT
        events.append(
            {
                "name": f"phase {rec.index}: {rec.dominant}",
                "cat": rec.model,
                "ph": "X",
                "ts": clock,
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "args": {
                    "terms": dict(rec.terms),
                    "dominant": rec.dominant,
                    "cost": rec.cost,
                    "contention": {str(k): v for k, v in rec.contention.items()},
                    "wall_time_s": rec.wall_time,
                },
            }
        )
        for fault in rec.faults:
            events.append(
                {
                    "name": f"fault: {fault.get('kind', '?')}",
                    "cat": "fault",
                    "ph": "i",
                    "s": "t",
                    "ts": clock,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(fault),
                }
            )
        clock += dur
    return events


#: Process id of the scheduler lane in exported campaign traces.  Phase
#: cost records export under pid 0; campaign task spans live in their own
#: Perfetto process so the two layers never interleave on one row.
SCHEDULER_PID = 1


def scheduler_trace_events(
    spans: Iterable[Dict[str, Any]],
    pid: int = SCHEDULER_PID,
) -> List[Dict[str, Any]]:
    """Campaign task spans -> scheduler-lane trace events.

    ``spans`` are the ``to_dict()`` forms of
    :class:`repro.sched.campaign.TaskSpan` (plain mappings keep this
    module free of a ``repro.sched`` import).  Executed and cached tasks
    become complete ("X") events on the *wall-clock* axis (campaign-start
    relative, seconds -> microseconds), one Perfetto thread row per pool
    worker (cached/inline tasks on worker row 0, the scheduler's own
    lane); failed and skipped tasks additionally emit an instant event so
    the holes in a campaign timeline are labelled.  Metadata events name
    the process "repro.sched campaign" and each worker row.
    """
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro.sched campaign"},
        }
    ]
    named_tids = set()
    for span in spans:
        status = span.get("status", "?")
        tid = int(span.get("worker") or 0)
        if tid not in named_tids:
            named_tids.add(tid)
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"worker {tid}" if tid else "scheduler"},
                }
            )
        ts = float(span.get("start") or 0.0) * 1e6
        args = {
            "key": span.get("key"),
            "status": status,
            "attempts": span.get("attempts"),
            "error": span.get("error"),
        }
        if status in ("done", "cached"):
            dur = max(0.0, float(span.get("end") or 0.0) * 1e6 - ts)
            events.append(
                {
                    "name": f"{span.get('name', '?')}"
                            + (" [cached]" if status == "cached" else ""),
                    "cat": "task",
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": f"{status}: {span.get('name', '?')}",
                    "cat": "scheduler",
                    "ph": "i",
                    "s": "t",
                    "ts": max(ts, float(span.get("end") or 0.0) * 1e6),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return events


def write_scheduler_trace(
    spans: Iterable[Dict[str, Any]],
    path: PathOrFile,
    pid: int = SCHEDULER_PID,
) -> int:
    """Write campaign task spans as Chrome trace-event JSON; returns count.

    Same container format as :func:`write_chrome_trace`; load the file at
    https://ui.perfetto.dev to scrub a campaign's scheduling timeline —
    per-worker occupancy, cache hits, retries, and failure holes.
    """
    events = scheduler_trace_events(spans, pid=pid)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.sched",
            "clock": "campaign wall time (1 second = 1e6 us)",
        },
    }
    fh, owned = _open_for(path, "w")
    try:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(events)


def write_chrome_trace(
    records: Iterable[PhaseCostRecord],
    path: PathOrFile,
    pid: int = 0,
    tid: int = 0,
) -> int:
    """Write records as Chrome trace-event JSON; returns the event count.

    The output is the object form (``{"traceEvents": [...]}``) with
    ``displayTimeUnit`` set, which both Perfetto and ``chrome://tracing``
    accept.  Open https://ui.perfetto.dev and drag the file in.
    """
    events = chrome_trace_events(records, pid=pid, tid=tid)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs", "clock": "simulated model time (1 cost unit = 1us)"},
    }
    fh, owned = _open_for(path, "w")
    try:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(events)
