"""Process-wide runtime metrics: counters, gauges and log2 histograms.

Cost records (:mod:`repro.obs.records`) are *post-hoc*: they explain a run
after it finished.  This module is the *runtime* counterpart — a
dependency-free registry of named metrics that the phase engines, the
campaign scheduler and the sweep runner increment while they work, so a
live campaign can be watched (``python -m repro campaign status
--follow``), snapshotted to JSONL (:mod:`repro.obs.snapshot`) and rendered
as Perfetto counter lanes next to the phase and scheduler spans.

Three metric kinds, all label-aware and thread-safe:

* :class:`Counter` — monotone non-decreasing totals (``inc``).  The
  monotonicity is a contract: snapshots of a counter series never go
  down (property-tested in ``tests/property/test_metrics_props.py``).
* :class:`Gauge` — a value that goes both ways (``set``/``inc``/``dec``):
  queue depth, frontier size, in-flight tasks.
* :class:`Histogram` — fixed **log2 buckets**: an observation ``v`` lands
  in the bucket whose upper bound is ``2**ceil(log2(v))``, clamped to
  ``[2**MIN_EXP, 2**MAX_EXP]``.  Exponent bucketing needs no a-priori
  bucket configuration, matches the power-of-two grids the paper's
  sweeps run on (κ, h-relations, n), and keeps per-series state a small
  sparse dict.  ``sum``/``count`` ride along so means are exact.

**Zero cost when disabled** — the same contract as ``record_costs=``:
every instrumentation site in the hot paths is guarded by a single
``REGISTRY.enabled`` predicate test, so with the registry disabled (the
default) the phase-issue and commit paths pay one attribute load + branch
and allocate nothing.  Enable with :func:`enable` /
``REGISTRY.enable()`` or by exporting ``REPRO_METRICS=1``.

Labels are keyword arguments: ``counter.inc(model="s-QSM")`` keeps one
series per distinct label set.  Series are keyed by the sorted label
items, so ``inc(a=1, b=2)`` and ``inc(b=2, a=1)`` are the same series.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "enable",
    "disable",
    "render_metrics_table",
    "record_phase",
    "record_superstep",
    "record_engine",
    "MIN_EXP",
    "MAX_EXP",
    "METRICS_ENV",
]

#: Environment variable enabling the process-wide registry at import time.
METRICS_ENV = "REPRO_METRICS"

#: Histogram exponent clamp: observations at or below ``2**MIN_EXP`` share
#: the lowest bucket, observations above ``2**MAX_EXP`` the highest.  The
#: range covers sub-microsecond latencies up to ~9e18 simulated cost units.
MIN_EXP = -30
MAX_EXP = 63

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    """Canonical (hashable) form of a label set: sorted ``(k, str(v))``."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def bucket_exponent(value: float) -> int:
    """The log2 bucket for ``value``: smallest ``e`` with ``value <= 2**e``.

    Non-positive observations clamp to :data:`MIN_EXP` (a latency of 0.0
    is a real measurement, not an error); huge ones to :data:`MAX_EXP`.
    """
    if value <= 0.0 or value <= 2.0 ** MIN_EXP:
        return MIN_EXP
    exp = math.ceil(math.log2(value))
    # log2 rounding can land one bucket high at exact powers of two.
    if exp > MIN_EXP and value <= 2.0 ** (exp - 1):
        exp -= 1
    return min(exp, MAX_EXP)


class Metric:
    """Base: a named metric owning one value-cell per label set."""

    kind = "?"

    def __init__(self, name: str, help: str = "", lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self.help = help
        self._lock = lock if lock is not None else threading.Lock()
        self._series: Dict[_LabelKey, Any] = {}

    def labelsets(self) -> List[Dict[str, str]]:
        with self._lock:
            keys = list(self._series)
        return [dict(key) for key in keys]

    def clear(self) -> None:
        with self._lock:
            self._series.clear()

    def samples(self) -> List[Dict[str, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """A monotone non-decreasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot inc by {amount}")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label set (the all-series total)."""
        with self._lock:
            return float(sum(self._series.values()))

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": dict(k), "value": v} for k, v in items]


class Gauge(Metric):
    """A value that can go up and down (depth, size, occupancy)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._series.get(_label_key(labels), 0.0))

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._series.items())
        return [{"labels": dict(k), "value": v} for k, v in items]


class Histogram(Metric):
    """Fixed log2-bucket distribution with exact ``count`` and ``sum``.

    Per-series state is ``{"count": n, "sum": s, "buckets": {exp: n_e}}``
    where ``n_e`` counts observations with ``2**(exp-1) < v <= 2**exp``
    (clamped to ``[MIN_EXP, MAX_EXP]``).
    """

    kind = "histogram"

    def observe(self, value: float, **labels: Any) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"histogram {self.name}: cannot observe NaN")
        exp = bucket_exponent(value)
        key = _label_key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = {"count": 0, "sum": 0.0, "buckets": {}}
                self._series[key] = cell
            cell["count"] += 1
            cell["sum"] += value
            cell["buckets"][exp] = cell["buckets"].get(exp, 0) + 1

    def count(self, **labels: Any) -> int:
        with self._lock:
            cell = self._series.get(_label_key(labels))
            return int(cell["count"]) if cell else 0

    def sum(self, **labels: Any) -> float:
        with self._lock:
            cell = self._series.get(_label_key(labels))
            return float(cell["sum"]) if cell else 0.0

    def mean(self, **labels: Any) -> float:
        with self._lock:
            cell = self._series.get(_label_key(labels))
            if not cell or not cell["count"]:
                return 0.0
            return cell["sum"] / cell["count"]

    def quantile(self, q: float, **labels: Any) -> float:
        """Approximate ``q``-quantile: the upper bound of the bucket where
        the cumulative count crosses ``q * count`` (an upper estimate,
        within a factor of 2 of the true quantile)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            cell = self._series.get(_label_key(labels))
            if not cell or not cell["count"]:
                return 0.0
            target = q * cell["count"]
            seen = 0
            for exp in sorted(cell["buckets"]):
                seen += cell["buckets"][exp]
                if seen >= target:
                    return 2.0 ** exp
            return 2.0 ** max(cell["buckets"])  # pragma: no cover - q <= 1

    def samples(self) -> List[Dict[str, Any]]:
        with self._lock:
            items = [
                (k, cell["count"], cell["sum"], dict(cell["buckets"]))
                for k, cell in sorted(self._series.items())
            ]
        return [
            {
                "labels": dict(k),
                "count": count,
                "sum": total,
                "buckets": {str(exp): n for exp, n in sorted(buckets.items())},
            }
            for k, count, total, buckets in items
        ]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with one enable/disable switch.

    ``counter()`` / ``gauge()`` / ``histogram()`` are idempotent
    get-or-create lookups (asking for an existing name with a different
    kind raises), so instrumentation sites need no shared setup.  The
    ``enabled`` attribute is the zero-cost gate: hot paths test it once
    and skip all metric work when it is ``False``.
    """

    def __init__(self, enabled: Optional[bool] = None) -> None:
        if enabled is None:
            enabled = os.environ.get(METRICS_ENV, "").strip().lower() in (
                "1", "true", "on", "yes",
            )
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    # -- switch ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- registration ------------------------------------------------------

    def _get_or_create(self, kind: str, name: str, help: str) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = _KINDS[kind](name, help)
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a {kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create("counter", name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create("gauge", name, help)  # type: ignore[return-value]

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create("histogram", name, help)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Clear every series (registrations survive, cached refs stay valid)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()

    # -- export ------------------------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        """The registry's full state as JSON-ready dicts, sorted by name.

        This is the payload a :class:`repro.obs.snapshot.MetricsSnapshot`
        freezes: ``[{"name", "type", "help", "samples": [...]}, ...]``.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        return [
            {
                "name": name,
                "type": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            }
            for name, metric in metrics
        ]


#: The process-wide registry every instrumentation site shares.  Disabled
#: by default (``REPRO_METRICS=1`` flips it on at import time).
REGISTRY = MetricsRegistry()


def enable() -> None:
    """Enable the process-wide registry."""
    REGISTRY.enable()


def disable() -> None:
    """Disable the process-wide registry (instrumentation goes zero-cost)."""
    REGISTRY.disable()


# -- rendering ---------------------------------------------------------------


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _fmt_num(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_metrics_table(metrics: Iterable[Mapping[str, Any]]) -> str:
    """Render ``MetricsRegistry.collect()`` output as an aligned text table.

    One row per series; histograms show ``count``, ``sum`` and the mean.
    This is what ``python -m repro metrics dump`` prints.
    """
    rows: List[Tuple[str, str, str, str]] = []
    for metric in metrics:
        kind = str(metric.get("type", "?"))
        for sample in metric.get("samples", ()):
            labels = _fmt_labels(sample.get("labels", {}))
            if kind == "histogram":
                count = sample.get("count", 0)
                total = float(sample.get("sum", 0.0))
                mean = total / count if count else 0.0
                value = f"count={count} sum={_fmt_num(total)} mean={_fmt_num(mean)}"
            else:
                value = _fmt_num(float(sample.get("value", 0.0)))
            rows.append((str(metric.get("name", "?")), kind, labels, value))
    if not rows:
        return "(no metrics recorded)"
    headers = ("metric", "type", "labels", "value")
    widths = [
        max(len(headers[i]), max(len(r[i]) for r in rows)) for i in range(4)
    ]
    def line(cells: Tuple[str, str, str, str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()
    return "\n".join([line(headers), line(tuple("-" * w for w in widths))] +  # type: ignore[arg-type]
                     [line(r) for r in rows])


# -- instrumentation helpers (core machines) ---------------------------------
#
# The phase engines call these from their commit paths, already behind an
# `if REGISTRY.enabled:` guard — everything below runs only when metrics
# are on, so it can afford the per-phase aggregation work.


def record_phase(model: str, record: Any, cost: float, faults: int = 0) -> None:
    """Account one committed shared-memory phase into the registry.

    ``record`` is the :class:`repro.core.phase.PhaseRecord` the commit just
    built; κ is the deepest cell queue of the phase (Section 2.1's
    contention), ops are reads + writes + local ops over all processors.
    """
    REGISTRY.counter(
        "repro_phases_total", "committed phases per model"
    ).inc(model=model)
    REGISTRY.counter(
        "repro_phase_cost_total", "accumulated simulated cost per model"
    ).inc(cost, model=model)
    ops = (
        sum(record.reads_per_proc.values())
        + sum(record.writes_per_proc.values())
        + sum(record.ops_per_proc.values())
    )
    if ops:
        REGISTRY.counter(
            "repro_ops_total", "reads + writes + local ops issued per model"
        ).inc(ops, model=model)
    kappa = 0
    if record.read_queue:
        kappa = max(record.read_queue.values())
    if record.write_queue:
        kappa = max(kappa, max(record.write_queue.values()))
    if kappa:
        REGISTRY.histogram(
            "repro_contention_kappa", "per-phase max cell-queue depth (κ)"
        ).observe(kappa, model=model)
    if faults:
        REGISTRY.counter(
            "repro_fault_events_total", "injected-fault events fired"
        ).inc(faults, model=model)


def record_superstep(
    record: Any, cost: float, faults: int = 0, model: str = "BSP"
) -> None:
    """Account one committed BSP-family superstep into the registry.

    The h-relation is ``max_i max(s_i, r_i)`` — the same quantity the
    ``g*h`` term charges (:func:`repro.core.cost.bsp_cost_terms`).
    ``model`` is the machine's ``model_label`` (``"BSP"`` or ``"MPC"``).
    """
    REGISTRY.counter(
        "repro_phases_total", "committed phases per model"
    ).inc(model=model)
    REGISTRY.counter(
        "repro_phase_cost_total", "accumulated simulated cost per model"
    ).inc(cost, model=model)
    ops = (
        sum(record.work_per_proc.values())
        + sum(record.sent_per_proc.values())
        + sum(record.received_per_proc.values())
    )
    if ops:
        REGISTRY.counter(
            "repro_ops_total", "reads + writes + local ops issued per model"
        ).inc(ops, model=model)
    h = 0
    if record.sent_per_proc:
        h = max(record.sent_per_proc.values())
    if record.received_per_proc:
        h = max(h, max(record.received_per_proc.values()))
    if h:
        REGISTRY.histogram(
            "repro_bsp_h_relation", "per-superstep routed h-relation"
        ).observe(h)
    if faults:
        REGISTRY.counter(
            "repro_fault_events_total", "injected-fault events fired"
        ).inc(faults, model=model)

def record_engine(engine: str, model: str) -> None:
    """Mark a machine construction with its *resolved* phase engine.

    A build-info-style gauge: ``repro_engine_info{engine=..., model=...}``
    counts machines built per (engine, model) pair, so a dashboard (or
    ``metrics dump``) shows at a glance whether a run that asked for the
    vector engine actually got it or fell back to reference
    (:func:`repro.core.engine_vector.resolve_engine`).
    """
    REGISTRY.gauge(
        "repro_engine_info", "machines built per resolved phase engine"
    ).inc(engine=engine, model=model)
