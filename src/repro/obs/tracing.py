"""Distributed tracing: spans, trace-context propagation, and SLO math.

The correlation layer the other observability pieces hang off: one
**trace** is one causal story (an HTTP submit, a campaign run), made of
**spans** — named intervals with a ``trace_id`` shared across every hop
and a ``span_id``/``parent_span_id`` chain giving the tree.  The design
follows the W3C Trace Context shape (``traceparent`` headers are parsed
and emitted, see :func:`parse_traceparent`) but stays stdlib-only and
schema-versioned like everything else here: finished spans stream to a
``repro.trace/1`` JSONL sink, one object per line::

    {"schema": "repro.trace/1", "name": "task", "kind": "task",
     "trace_id": "4bf9...", "span_id": "00f0...", "parent_span_id": "...",
     "start": 1723110000.120, "end": 1723110000.480,
     "status": "ok", "attrs": {"key": "job-0001/p0", "worker": "w1"}}

Propagation is explicit where it must be and ambient where it can be:

* within a thread, :meth:`Tracer.span` keeps a thread-local stack so
  nested spans parent automatically;
* across queues, pickled task frames, and processes, the
  :class:`SpanContext` travels as a plain ``{"trace_id", "span_id"}``
  dict (see ``trace=`` on the worker-pool ``submit``), and the receiving
  side re-attaches it with :meth:`Tracer.activate` — the explicit
  handoff that makes remote-worker and requeued-task spans parent
  correctly across hosts.

Like ``record_costs=`` and ``REPRO_METRICS``, tracing is a zero-cost
no-op unless switched on: every instrumented site pays exactly one
predicate test of ``TRACER.enabled`` (initialised from ``$REPRO_TRACE``)
and touches nothing else when it is false.

On top of the same span durations, :meth:`Tracer.slo` computes **exact**
(nearest-rank, not interpolated) p50/p95/p99 latencies for task spans
and end-to-end job spans — the numbers ``GET /v1/slo`` serves and the
dashboard renders.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Sequence, Union

from repro.util.clock import wallclock

__all__ = [
    "SCHEMA",
    "TRACE_ENV",
    "TRACE_PATH_ENV",
    "SpanContext",
    "Span",
    "Tracer",
    "TRACER",
    "enable_tracing",
    "disable_tracing",
    "parse_traceparent",
    "format_traceparent",
    "percentile",
    "slo_summary",
    "read_trace_file",
    "merge_trace_files",
]

#: Version tag stamped on every exported span line.
SCHEMA = "repro.trace/1"

#: Environment switch: ``1`` / ``true`` / ``on`` / ``yes`` enable tracing.
TRACE_ENV = "REPRO_TRACE"

#: Optional environment sink: a JSONL path finished spans append to.
#: Worker processes spawned with this set write their own span files,
#: which ``python -m repro trace merge`` folds into one Perfetto trace.
TRACE_PATH_ENV = "REPRO_TRACE_PATH"

_TRUTHY = ("1", "true", "on", "yes")

#: ``traceparent`` version field — only ``00`` exists today.
_TP_VERSION = "00"


def _env_enabled() -> bool:
    return os.environ.get(TRACE_ENV, "").strip().lower() in _TRUTHY


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


class SpanContext:
    """The propagated half of a span: ``(trace_id, span_id)``.

    This is what crosses process and host boundaries — as a
    ``traceparent`` header over HTTP and as a small dict inside pickled
    task frames.  It is deliberately value-like and immutable.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("SpanContext is immutable")

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, SpanContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"SpanContext({self.trace_id!r}, {self.span_id!r})"

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> Optional["SpanContext"]:
        if not data:
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(str(trace_id), str(span_id))


def format_traceparent(ctx: SpanContext, sampled: bool = True) -> str:
    """``00-<trace_id>-<span_id>-<flags>`` per the W3C Trace Context ABNF."""
    return f"{_TP_VERSION}-{ctx.trace_id}-{ctx.span_id}-{'01' if sampled else '00'}"


def parse_traceparent(header: Optional[str]) -> Optional[SpanContext]:
    """Decode an inbound ``traceparent`` header; ``None`` when malformed.

    Tolerant by design (a bad header must never fail a request): the
    version field is ignored beyond its width, and the all-zero
    trace/span ids the spec declares invalid are rejected.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    _, trace_id, span_id = parts[0], parts[1].lower(), parts[2].lower()
    if len(parts[0]) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id, span_id)


class Span:
    """One named interval of one trace.

    ``kind`` is the coarse role the SLO math and the Perfetto exporter
    group by: ``"request"`` (HTTP handling), ``"job"`` (submit to
    terminal state — the end-to-end latency), ``"task"`` (one task from
    dispatch to resolution, surviving requeues), ``"exec"`` (one
    delivery attempt actually running on a worker), or ``"internal"``.
    """

    __slots__ = (
        "name", "kind", "trace_id", "span_id", "parent_span_id",
        "start", "end", "status", "attrs", "host",
    )

    def __init__(
        self,
        name: str,
        kind: str = "internal",
        trace_id: Optional[str] = None,
        span_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
        start: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
        host: Optional[str] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.trace_id = trace_id or _new_trace_id()
        self.span_id = span_id or _new_span_id()
        self.parent_span_id = parent_span_id
        self.start = wallclock() if start is None else start
        self.end: Optional[float] = None
        self.status = "ok"
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.host = host

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        """Seconds from start to end; 0.0 while the span is open."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "schema": SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.attrs:
            row["attrs"] = dict(self.attrs)
        if self.host:
            row["host"] = self.host
        return row

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        span = cls(
            name=str(data.get("name", "")),
            kind=str(data.get("kind", "internal")),
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_span_id=data.get("parent_span_id"),
            start=float(data.get("start", 0.0)),
            attrs=dict(data.get("attrs", {})),
            host=data.get("host"),
        )
        end = data.get("end")
        span.end = None if end is None else float(end)
        span.status = str(data.get("status", "ok"))
        return span


class _SpanHandle:
    """Context manager yielded by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Optional[Span]) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Optional[Span]:
        if self.span is not None:
            self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.span is not None:
            self._tracer._pop(self.span)
            if exc_type is not None and self.span.status == "ok":
                self.span.status = "error"
                self.span.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
            self._tracer.finish(self.span)


class Tracer:
    """The process-wide span factory, thread-local context, and sink.

    ``enabled`` is the single predicate every instrumented call site
    tests; when false, no ids are generated, no clock is read, and no
    state is touched.  Finished spans go two places: a bounded in-memory
    deque (``finished`` — what :meth:`slo` reads) and, when configured,
    an append-only JSONL file flushed per line so a SIGKILLed process
    loses at most the line being written.
    """

    def __init__(self, enabled: Optional[bool] = None, keep: int = 4096) -> None:
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self.finished: "deque[Span]" = deque(maxlen=keep)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sink: Optional[IO[str]] = None
        self._sink_path: Optional[str] = None
        self.host = f"pid-{os.getpid()}"
        path = os.environ.get(TRACE_PATH_ENV, "").strip()
        if self.enabled and path:
            self.configure(path=path)

    # -- configuration -------------------------------------------------------

    def configure(
        self,
        path: Optional[str] = None,
        enabled: Optional[bool] = None,
        host: Optional[str] = None,
    ) -> None:
        """(Re)wire the tracer: flip ``enabled``, point the JSONL sink."""
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if host is not None:
                self.host = host
            if path is not None and path != self._sink_path:
                if self._sink is not None:
                    try:
                        self._sink.close()
                    except OSError:
                        pass
                self._sink = open(path, "a", buffering=1)
                self._sink_path = path

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None
                self._sink_path = None

    def detach_sink(self) -> None:
        """Forget an inherited sink without closing it (forked children).

        A forked pool worker inherits the parent's open sink file
        object; writing there would record every exec span twice, since
        the span also ships home in the result reply for scheduler-side
        :meth:`ingest`.  The reference is dropped without ``close()`` —
        the file description is shared with the parent, which keeps
        writing — leaving the child recording in memory only.
        """
        with self._lock:
            self._sink = None
            self._sink_path = None

    def reset(self) -> None:
        """Drop accumulated spans and thread-local state (test hook)."""
        self.close()
        self.finished.clear()
        self._local = threading.local()

    # -- thread-local context ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit; heal rather than corrupt
            stack.remove(span)

    def current(self) -> Optional[SpanContext]:
        """The context new spans on this thread would parent under."""
        if not self.enabled:
            return None
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].context
        return getattr(self._local, "ambient", None)

    def activate(self, ctx: Optional[SpanContext]) -> Optional[SpanContext]:
        """Explicit handoff: adopt ``ctx`` as this thread's ambient parent.

        Returns the previous ambient context so callers can restore it
        (``prev = t.activate(ctx) ... t.activate(prev)``).  This is how
        a worker thread picks up the context that rode in on a pickled
        task frame.
        """
        prev = getattr(self._local, "ambient", None)
        self._local.ambient = ctx
        return prev

    # -- span lifecycle ------------------------------------------------------

    def start_span(
        self,
        name: str,
        kind: str = "internal",
        parent: Optional[Union[Span, SpanContext]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Open a span (``None`` when tracing is off).

        Parent resolution: an explicit ``parent`` wins; otherwise the
        thread's current context; otherwise the span roots a new trace.
        """
        if not self.enabled:
            return None
        if isinstance(parent, Span):
            parent = parent.context
        if parent is None:
            parent = self.current()
        if parent is None:
            return Span(name, kind=kind, attrs=attrs, host=self.host)
        return Span(
            name,
            kind=kind,
            trace_id=parent.trace_id,
            parent_span_id=parent.span_id,
            attrs=attrs,
            host=self.host,
        )

    def span(
        self,
        name: str,
        kind: str = "internal",
        parent: Optional[Union[Span, SpanContext]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> _SpanHandle:
        """``with TRACER.span("phase"):`` — start, activate, finish."""
        return _SpanHandle(self, self.start_span(name, kind=kind, parent=parent, attrs=attrs))

    def finish(self, span: Optional[Span], status: Optional[str] = None) -> None:
        """Close ``span``: stamp the end time, record, export."""
        if span is None or not self.enabled:
            return
        if status is not None:
            span.status = status
        if span.end is None:
            span.end = wallclock()
        self._record(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self.finished.append(span)
            if self._sink is not None:
                try:
                    self._sink.write(json.dumps(span.to_dict()) + "\n")
                except (OSError, ValueError):
                    pass

    def ingest(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Adopt finished spans shipped from another process.

        Worker replies carry their execution spans as dicts; the
        scheduler-side tracer folds them into its own record stream so a
        single-host run produces a single trace file.  Returns the
        number of spans adopted.
        """
        if not self.enabled:
            return 0
        count = 0
        for row in rows:
            try:
                span = Span.from_dict(row)
            except (KeyError, TypeError, ValueError):
                continue
            self._record(span)
            count += 1
        return count

    # -- SLO ------------------------------------------------------------------

    def slo(self) -> Dict[str, Any]:
        """Exact percentile latencies over the retained finished spans."""
        with self._lock:
            spans = list(self.finished)
        return slo_summary(spans, enabled=self.enabled)


def percentile(durations: Sequence[float], pct: float) -> float:
    """Exact nearest-rank percentile (no interpolation) of ``durations``.

    ``percentile(xs, 50)`` is the smallest x such that at least 50% of
    the samples are <= x — the classical definition, so the returned
    value is always one of the observed samples.
    """
    if not durations:
        return 0.0
    ordered = sorted(durations)
    rank = max(1, -(-len(ordered) * pct // 100))  # ceil without floats
    return ordered[int(rank) - 1]


def _bucket(durations: Sequence[float]) -> Dict[str, Any]:
    return {
        "count": len(durations),
        "p50": round(percentile(durations, 50), 6),
        "p95": round(percentile(durations, 95), 6),
        "p99": round(percentile(durations, 99), 6),
        "max": round(max(durations), 6) if durations else 0.0,
    }


def slo_summary(
    spans: Iterable[Union[Span, Mapping[str, Any]]],
    enabled: bool = True,
) -> Dict[str, Any]:
    """The ``GET /v1/slo`` payload body: task + end-to-end percentiles.

    ``task`` aggregates ``kind == "task"`` spans (dispatch to
    resolution, requeues included); ``end_to_end`` aggregates ``kind ==
    "job"`` spans (submit accepted to terminal state — what a tenant
    actually waits).  Percentiles are exact nearest-rank over the
    retained window, in seconds.
    """
    tasks: List[float] = []
    jobs: List[float] = []
    for span in spans:
        if isinstance(span, Mapping):
            kind = span.get("kind")
            start, end = span.get("start"), span.get("end")
            duration = max(0.0, float(end) - float(start)) if end is not None else None
        else:
            kind = span.kind
            duration = span.duration if span.end is not None else None
        if duration is None:
            continue
        if kind == "task":
            tasks.append(duration)
        elif kind == "job":
            jobs.append(duration)
    return {
        "enabled": bool(enabled),
        "window": len(tasks) + len(jobs),
        "task": _bucket(tasks),
        "end_to_end": _bucket(jobs),
    }


def read_trace_file(path: str) -> List[Dict[str, Any]]:
    """Load a ``repro.trace/1`` JSONL file, tolerating a torn tail line.

    Lines that fail to parse (a process SIGKILLed mid-write) are
    skipped, matching :func:`repro.obs.snapshot.read_snapshots`.
    """
    spans: List[Dict[str, Any]] = []
    try:
        handle = open(path, "r")
    except OSError:
        return spans
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict) and row.get("schema") == SCHEMA:
                spans.append(row)
    return spans


def merge_trace_files(paths: Iterable[str]) -> List[Dict[str, Any]]:
    """Fold several ``repro.trace/1`` files into one deduplicated batch.

    The multi-host story: the scheduler writes one file (its own spans
    plus the exec spans replies shipped home), and workers started with
    ``REPRO_TRACE_PATH`` write their own — so the same exec span can
    legitimately appear in two files.  Spans are deduplicated by
    ``(trace_id, span_id)`` (first occurrence wins) and returned sorted
    by start time, ready for
    :func:`repro.obs.exporters.trace_span_events`.
    """
    seen = set()
    merged: List[Dict[str, Any]] = []
    for path in paths:
        for row in read_trace_file(path):
            key = (row.get("trace_id"), row.get("span_id"))
            if key in seen:
                continue
            seen.add(key)
            merged.append(row)
    merged.sort(key=lambda r: float(r.get("start") or 0.0))
    return merged


#: The process-wide tracer every instrumented site consults.
TRACER = Tracer()


def enable_tracing(path: Optional[str] = None, host: Optional[str] = None) -> Tracer:
    """Switch :data:`TRACER` on (and optionally point its JSONL sink)."""
    TRACER.configure(path=path, enabled=True, host=host)
    return TRACER


def disable_tracing() -> None:
    """Switch :data:`TRACER` off and detach its sink."""
    TRACER.configure(enabled=False)
    TRACER.close()
