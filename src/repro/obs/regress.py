"""Bench-regression watchdog: diff current bench points against a baseline.

The repo commits its measured trajectory as ``BENCH_*.json`` files (sweep
caches keyed by point, and the scheduler A/B summary).  This module turns
those files from archival into *enforced*: :func:`compare_bench` flattens
a baseline and a current measurement into dotted metric paths, applies
noise-aware, direction-aware relative tolerances, and reports every
regression; ``python -m repro bench check`` wires it to the CLI and CI
(exit 0 clean, 1 regression, 2 usage).

Noise handling, per metric class:

* **Deterministic metrics** (simulated costs — ``measured``, ``bound``
  — and correctness booleans) get a tight default tolerance: the
  simulators are seeded, so any drift is a real cost-model change.
* **Wall-clock ratios** (``speedup``) get a loose tolerance — they move
  with machine load but are self-normalising.
* **Raw wall-clock numbers** (``timings``, ``throughput``) are reported
  but **never gate** by default: comparing absolute seconds measured on
  the committing machine against a CI runner is noise by construction.
  ``strict_wall=True`` opts them in (with the loose tolerance) for
  same-machine A/B use.
* **Median-of-k** — when the current side is sampled several times (the
  CLI's ``--samples K`` re-collects the sched bench K times), each metric
  compares at its median across samples, so one noisy sample cannot fake
  a regression.

A baseline point missing from the current side fails the check (a
vanished point can hide a regression); a new current point is reported as
informational.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "BenchDelta",
    "RegressionReport",
    "flatten_metrics",
    "metric_direction",
    "compare_bench",
    "load_bench",
    "collect_sched_current",
    "collect_phase_engine_current",
    "collect_cross_model_current",
    "store_outcome_metrics",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WALL_TOLERANCE",
]

#: Relative tolerance for deterministic (simulated-cost) metrics.
DEFAULT_TOLERANCE = 0.01

#: Relative tolerance for wall-clock-derived ratio metrics (speedups).
DEFAULT_WALL_TOLERANCE = 0.6

#: Key fragments marking a metric as wall-clock-derived (noisy).
_WALL_FRAGMENTS = ("timing", "throughput", "speedup", "wall", "seconds", "_s")

#: Key fragments marking raw wall-clock numbers that never gate by default.
_INFO_FRAGMENTS = ("timing", "throughput", "wall", "seconds")

#: Keys that are run configuration, not measurements — never compared.
_SKIP_KEYS = {"jobs", "grid", "n", "p", "seed", "points", "schema", "version"}


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and not (isinstance(value, float) and math.isnan(value))


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    k = len(ordered)
    mid = k // 2
    if k % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def flatten_metrics(data: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten a bench payload into ``{"dotted.path": number | bool}``.

    Handles both committed schemas:

    * sweep caches — ``{point_key: outcome}`` where an outcome dict
      carries ``measured`` / ``correct`` / ``bound`` (plus config echo
      that is skipped);
    * summary benches — nested dicts of numbers/booleans (e.g.
      ``BENCH_sched.json``'s ``timings`` / ``throughput`` / ``speedup``).

    Config keys (:data:`_SKIP_KEYS`) are dropped.  A numeric list leaf
    collapses to its median (the median-of-k hook: pass K samples as a
    list and the comparison sees their median).
    """
    out: Dict[str, Any] = {}
    if isinstance(data, Mapping):
        is_outcome = "measured" in data  # sweep outcomes always carry it
        for key, value in data.items():
            key = str(key)
            if key in _SKIP_KEYS:
                continue
            if is_outcome and key not in ("measured", "correct", "bound"):
                continue  # outcome dicts: only the measurements, not the echo
            path = f"{prefix}.{key}" if prefix else key
            out.update(flatten_metrics(value, path))
        return out
    if isinstance(data, bool):
        if prefix:
            out[prefix] = data
        return out
    if _is_number(data):
        if prefix:
            out[prefix] = float(data)
        return out
    if isinstance(data, (list, tuple)):
        numbers = [float(v) for v in data if _is_number(v)]
        if prefix and numbers and len(numbers) == len(data):
            out[prefix] = _median(numbers)
        return out
    return out  # strings and other leaves are not measurements


def metric_direction(path: str) -> str:
    """The regression direction of a metric path.

    ``"higher"`` — bigger is better (throughput, speedup); ``"lower"`` —
    smaller is better (timings, measured cost, bounds); ``"exact"`` —
    two-sided (anything unrecognised drifting beyond tolerance flags).
    """
    lowered = path.lower()
    if "throughput" in lowered or "speedup" in lowered:
        return "higher"
    if any(f in lowered for f in ("timing", "seconds", "wall", "measured", "time", "cost", "bound")):
        return "lower"
    return "exact"


def _is_wall(path: str) -> bool:
    lowered = path.lower()
    return any(f in lowered for f in _WALL_FRAGMENTS)


def _is_informational(path: str) -> bool:
    lowered = path.lower()
    return any(f in lowered for f in _INFO_FRAGMENTS)


@dataclass(frozen=True)
class BenchDelta:
    """One metric's baseline-vs-current verdict.

    ``status`` is ``"ok"``, ``"improved"``, ``"regression"``, ``"info"``
    (wall-clock metric outside the gate), ``"missing"`` (baseline point
    absent from current — fails the check) or ``"new"`` (current-only).
    """

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    direction: str
    tolerance: float
    status: str

    @property
    def rel_change(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        if self.baseline == 0:
            return None if self.current == 0 else math.inf
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass(frozen=True)
class RegressionReport:
    """Everything :func:`compare_bench` decided, plus the verdict."""

    baseline_source: str
    current_source: str
    deltas: Tuple[BenchDelta, ...] = ()

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.deltas:
            out[d.status] = out.get(d.status, 0) + 1
        return out

    def render_markdown(self) -> str:
        """The check as a markdown report (what CI uploads as an artifact)."""
        counts = self.counts
        verdict = "PASS" if self.ok else "REGRESSION"
        lines = [
            f"# Bench check: {verdict}",
            "",
            f"* baseline: `{self.baseline_source}`",
            f"* current: `{self.current_source}`",
            f"* metrics: {len(self.deltas)} compared — "
            + ", ".join(f"{v} {k}" for k, v in sorted(counts.items())),
            "",
            "| metric | baseline | current | change | direction | tolerance | status |",
            "|---|---|---|---|---|---|---|",
        ]
        def fmt(v: Optional[float]) -> str:
            if v is None:
                return "-"
            if float(v).is_integer() and abs(v) < 1e15:
                return str(int(v))
            return f"{v:.6g}"
        ordered = sorted(
            self.deltas,
            key=lambda d: ({"regression": 0, "missing": 1}.get(d.status, 2), d.metric),
        )
        for d in ordered:
            rel = d.rel_change
            change = "-" if rel is None else f"{rel:+.1%}"
            lines.append(
                f"| `{d.metric}` | {fmt(d.baseline)} | {fmt(d.current)} "
                f"| {change} | {d.direction} | {d.tolerance:.0%} | **{d.status}** |"
            )
        lines.append("")
        return "\n".join(lines)


def compare_bench(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    strict_wall: bool = False,
    baseline_source: str = "baseline",
    current_source: str = "current",
) -> RegressionReport:
    """Diff two bench payloads into a :class:`RegressionReport`.

    ``baseline`` / ``current`` are parsed ``BENCH_*.json`` payloads (any
    committed schema); they are flattened by :func:`flatten_metrics` and
    compared path by path with per-class tolerances (module docstring).
    """
    if not 0 <= tolerance:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if not 0 <= wall_tolerance:
        raise ValueError(f"wall_tolerance must be >= 0, got {wall_tolerance}")
    base = flatten_metrics(baseline)
    cur = flatten_metrics(current)
    deltas: List[BenchDelta] = []
    for path in sorted(set(base) | set(cur)):
        b, c = base.get(path), cur.get(path)
        if b is None:
            deltas.append(BenchDelta(path, None,
                                     float(c) if not isinstance(c, bool) else float(bool(c)),
                                     "-", 0.0, "new"))
            continue
        if c is None:
            deltas.append(BenchDelta(path,
                                     float(b) if not isinstance(b, bool) else float(bool(b)),
                                     None, "-", 0.0, "missing"))
            continue
        if isinstance(b, bool) or isinstance(c, bool):
            ok = bool(c) or not bool(b)  # true -> false is the only failure
            deltas.append(BenchDelta(path, float(bool(b)), float(bool(c)),
                                     "higher", 0.0,
                                     "ok" if ok else "regression"))
            continue
        wall = _is_wall(path)
        tol = wall_tolerance if wall else tolerance
        direction = metric_direction(path)
        if b == 0:
            drift = 0.0 if c == 0 else math.inf
        else:
            drift = (c - b) / abs(b)
        if direction == "higher":
            bad, better = drift < -tol, drift > tol
        elif direction == "lower":
            bad, better = drift > tol, drift < -tol
        else:
            bad, better = abs(drift) > tol, False
        if _is_informational(path) and not strict_wall:
            status = "info"
        elif bad:
            status = "regression"
        elif better:
            status = "improved"
        else:
            status = "ok"
        deltas.append(BenchDelta(path, float(b), float(c), direction, tol, status))
    return RegressionReport(
        baseline_source=baseline_source,
        current_source=current_source,
        deltas=tuple(deltas),
    )


def load_bench(path: str) -> Dict[str, Any]:
    """Parse one ``BENCH_*.json`` file (any committed schema)."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, Mapping):
        raise ValueError(f"{path}: expected a JSON object, got {type(data).__name__}")
    return dict(data)


def _merge_samples(samples: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Median-of-k merge: numeric leaves -> lists (flattened to medians),
    booleans -> all-of, structure from the first sample."""
    if len(samples) == 1:
        return dict(samples[0])
    first = samples[0]
    out: Dict[str, Any] = {}
    for key, value in first.items():
        values = [s.get(key) for s in samples if key in s]
        if isinstance(value, Mapping):
            out[key] = _merge_samples([v for v in values if isinstance(v, Mapping)])
        elif isinstance(value, bool):
            out[key] = all(bool(v) for v in values)
        elif _is_number(value):
            out[key] = [float(v) for v in values if _is_number(v)]
        else:
            out[key] = value
    return out


def collect_sched_current(samples: int = 1, jobs: Optional[int] = None) -> Dict[str, Any]:
    """Re-measure the sched A/B bench ``samples`` times (median-of-k).

    Requires the ``benchmarks`` tree on the path (the CLI runs with
    ``PYTHONPATH=src:.``); numeric leaves come back as K-sample lists so
    :func:`flatten_metrics` compares their medians.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    from benchmarks.bench_sched import collect

    return _merge_samples([collect(jobs=jobs) for _ in range(samples)])


def collect_phase_engine_current(
    samples: int = 1, jobs: Optional[int] = None
) -> Dict[str, Any]:
    """Re-measure the phase-engine A/B bench ``samples`` times (median-of-k).

    The current side for ``BENCH_phase_engine.json`` baselines (the
    ``"engines"`` schema): per-engine wall numbers are informational,
    the reference-vs-vector ``speedup`` ratios gate at the loose wall
    tolerance, and the large-n ``table1`` simulated costs gate at the
    tight deterministic tolerance.  Requires the ``benchmarks`` tree on
    the path, like :func:`collect_sched_current`.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    from benchmarks.bench_phase_engine import collect

    return _merge_samples([collect(jobs=jobs) for _ in range(samples)])


def collect_cross_model_current(
    samples: int = 1, jobs: Optional[int] = None
) -> Dict[str, Any]:
    """Re-measure the cross-model table ``samples`` times (median-of-k).

    The current side for ``BENCH_cross_model.json`` baselines (the
    ``"cells"`` schema): every cell's ``measured`` / ``bound`` / ``correct``
    is a deterministic simulated cost, so the whole payload gates at the
    tight 1% tolerance, and the MPC/PEM ``engines_agree_*`` booleans fail
    the check on any true -> false flip.  Requires the ``benchmarks`` tree
    on the path, like :func:`collect_sched_current`.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    from benchmarks.bench_cross_model import collect

    return _merge_samples([collect(jobs=jobs) for _ in range(samples)])


def store_outcome_metrics(store: Any, limit: Optional[int] = None) -> Dict[str, Any]:
    """Flattenable payload from a :class:`repro.sched.store.ResultStore`.

    Maps each stored key to its outcome dict, so store-backed campaign
    results diff exactly like a sweep cache (``<key>.measured`` paths).
    """
    out: Dict[str, Any] = {}
    for i, key in enumerate(sorted(store.keys())):
        if limit is not None and i >= limit:
            break
        outcome = store.get_outcome(key)
        if isinstance(outcome, Mapping):
            out[key] = dict(outcome)
    return out
