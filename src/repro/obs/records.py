"""Per-phase cost-provenance records and per-run dominance summaries.

A :class:`PhaseCostRecord` is the observability counterpart of a
:class:`~repro.core.phase.PhaseRecord`: where the accounting record holds
the raw counts the Section 2 formulas consume, the cost record holds the
*evaluated* terms of the model's ``max()`` — one ``(term name, charged
value)`` pair per term — together with which term won, so the provenance
of every charged unit survives aggregation.

Term names are the formula text: ``"m_op"``, ``"g*m_rw"`` and ``"kappa"``
on the QSM (``"g*kappa"`` on the s-QSM, ``"d*kappa"`` on the QSM(g,d)),
``"mu*ceil(m_rw/alpha)"`` / ``"mu*ceil(kappa/beta)"`` on the GSM, and
``"w"`` / ``"g*h"`` / ``"L"`` on the BSP.  Two invariants hold for every
model (property-tested in ``tests/property/test_obs_props.py``):

* ``cost == max(terms.values())`` for each record, and
* ``sum(max(r.terms.values()) for r in records) == machine.time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs import tracing as _tracing

__all__ = [
    "PhaseCostRecord",
    "RunCostSummary",
    "dominant_of",
    "summarize",
    "dominant_fractions",
    "machine_cost_records",
]


def _active_trace() -> Optional[Dict[str, str]]:
    """The live span stamp for a record built right now, or ``None``.

    One predicate test when tracing is off — the builders stay zero-cost
    on untraced runs, like every other ``TRACER.enabled`` site.
    """
    if not _tracing.TRACER.enabled:
        return None
    ctx = _tracing.TRACER.current()
    return None if ctx is None else ctx.to_dict()


def dominant_of(terms: Mapping[str, float]) -> str:
    """The winning term: the first key attaining ``max(terms.values())``.

    Term dicts are built in the model's canonical order (local work first,
    then bandwidth, then contention/latency), so ties resolve the same way
    :func:`repro.analysis.timeline.dominant_term` always resolved them.
    """
    best_name = ""
    best = float("-inf")
    for name, value in terms.items():
        if value > best:
            best, best_name = value, name
    return best_name


@dataclass(frozen=True)
class PhaseCostRecord:
    """Cost provenance for one committed phase / superstep.

    Attributes
    ----------
    index:
        0-based phase (superstep) number within the machine's history.
    model:
        Model tag: ``"QSM"``, ``"s-QSM"``, ``"QSM(g,d)"``, ``"GSM"``,
        ``"BSP"``, ``"PRAM"``, ``"MPC"`` or ``"PEM"``.
    terms:
        Term name -> charged value, in the model's canonical term order.
    dominant:
        The term that set the charge (first argmax of ``terms``).
    cost:
        The phase's charge — always ``max(terms.values())``.
    contention:
        Histogram over cells: queue length -> number of cells whose queue
        had that length this phase (read and write queues pooled).  On the
        BSP the analogue: messages received -> number of components.
    ops_per_proc:
        Processor id -> total operations issued this phase (reads + writes
        + local ops; on the BSP: work + sends + receives).
    wall_time:
        Real seconds from phase open to commit when the record was taken
        live (``record_costs=True``); 0.0 when rebuilt from history.
    faults:
        Injected-fault events that fired at this phase, as the
        ``{"step", "kind", "detail"}`` dicts of
        :meth:`repro.faults.plan.FaultEvent.to_dict` — empty on clean
        runs.  Faults ride the same records as costs so a Perfetto trace
        of a chaos run shows *where* the injection hit.
    trace:
        Distributed-trace stamp: the ``{"trace_id", "span_id"}`` of the
        span active when the phase committed (the worker's ``exec`` span
        on a traced campaign run), or ``None``.  Stamped only when
        :data:`repro.obs.tracing.TRACER` is enabled; lets the Perfetto
        merge draw flow arrows from the task span onto the phase rows.
    """

    index: int
    model: str
    terms: Mapping[str, float]
    dominant: str
    cost: float
    contention: Mapping[int, int] = field(default_factory=dict)
    ops_per_proc: Mapping[int, int] = field(default_factory=dict)
    wall_time: float = 0.0
    faults: Tuple[Mapping[str, Any], ...] = ()
    trace: Optional[Mapping[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; :meth:`from_dict` inverts it exactly."""
        row: Dict[str, Any] = {
            "index": self.index,
            "model": self.model,
            "terms": dict(self.terms),
            "dominant": self.dominant,
            "cost": self.cost,
            "contention": {str(k): v for k, v in self.contention.items()},
            "ops_per_proc": {str(k): v for k, v in self.ops_per_proc.items()},
            "wall_time": self.wall_time,
            "faults": [dict(f) for f in self.faults],
        }
        if self.trace is not None:
            row["trace"] = dict(self.trace)
        return row

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PhaseCostRecord":
        trace = data.get("trace")
        return cls(
            index=int(data["index"]),
            model=str(data["model"]),
            terms={str(k): float(v) for k, v in data["terms"].items()},
            dominant=str(data["dominant"]),
            cost=float(data["cost"]),
            contention={int(k): int(v) for k, v in data.get("contention", {}).items()},
            ops_per_proc={int(k): int(v) for k, v in data.get("ops_per_proc", {}).items()},
            wall_time=float(data.get("wall_time", 0.0)),
            faults=tuple(dict(f) for f in data.get("faults", ())),
            trace=None if trace is None else {str(k): str(v) for k, v in trace.items()},
        )


def build_phase_cost_record(
    index: int,
    model: str,
    terms: Mapping[str, float],
    cost: float,
    record: "PhaseRecord",  # noqa: F821 - structural; avoids an import cycle
    wall_time: float = 0.0,
    faults: Tuple[Mapping[str, Any], ...] = (),
) -> PhaseCostRecord:
    """Assemble a :class:`PhaseCostRecord` from a shared-memory phase."""
    from repro.core.phase import merge_counts

    contention: Dict[int, int] = {}
    for queue in (record.read_queue, record.write_queue):
        for depth in queue.values():
            contention[depth] = contention.get(depth, 0) + 1
    return PhaseCostRecord(
        index=index,
        model=model,
        terms=dict(terms),
        dominant=dominant_of(terms),
        cost=float(cost),
        contention=contention,
        ops_per_proc=merge_counts(
            record.reads_per_proc, record.writes_per_proc, record.ops_per_proc
        ),
        wall_time=wall_time,
        faults=tuple(faults),
        trace=_active_trace(),
    )


def build_superstep_cost_record(
    index: int,
    terms: Mapping[str, float],
    cost: float,
    record: "SuperstepRecord",  # noqa: F821 - structural; avoids an import cycle
    wall_time: float = 0.0,
    faults: Tuple[Mapping[str, Any], ...] = (),
    model: str = "BSP",
) -> PhaseCostRecord:
    """Assemble a :class:`PhaseCostRecord` from a BSP-family superstep.

    ``model`` is the machine's ``model_label`` — ``"BSP"`` (the default)
    or ``"MPC"``, whose supersteps share this record shape.
    """
    from repro.core.phase import merge_counts

    contention: Dict[int, int] = {}
    for received in record.received_per_proc.values():
        contention[received] = contention.get(received, 0) + 1
    return PhaseCostRecord(
        index=index,
        model=model,
        terms=dict(terms),
        dominant=dominant_of(terms),
        cost=float(cost),
        contention=contention,
        ops_per_proc=merge_counts(
            record.work_per_proc, record.sent_per_proc, record.received_per_proc
        ),
        wall_time=wall_time,
        faults=tuple(faults),
        trace=_active_trace(),
    )


@dataclass(frozen=True)
class RunCostSummary:
    """Aggregation of a run's cost records into dominance statistics.

    ``dominant_phases`` counts how many phases each term won;
    ``dominant_cost`` sums the cost of the phases each term won, so
    ``dominant_cost[t] / total_cost`` is the fraction of the run's charge
    attributable to phases where ``t`` was the binding constraint — the
    "dominant-term fraction" the Table 1 drivers report.
    """

    phases: int
    total_cost: float
    dominant_phases: Mapping[str, int]
    dominant_cost: Mapping[str, float]
    wall_time: float = 0.0

    @property
    def fractions(self) -> Dict[str, float]:
        """Cost-weighted dominant-term fractions, summing to 1.

        A degenerate run whose phases all charged zero (``total_cost ==
        0``) returns an **all-zero** dict over the observed dominant terms
        — same keys as ``dominant_cost``, never a division by zero, and
        an empty dict only for an empty record list.
        """
        if self.total_cost <= 0:
            return {term: 0.0 for term in self.dominant_cost}
        return {
            term: cost / self.total_cost
            for term, cost in self.dominant_cost.items()
        }

    @property
    def dominant(self) -> str:
        """The term that dominated the largest share of the run's cost."""
        return dominant_of(self.dominant_cost)


def summarize(records: List[PhaseCostRecord]) -> RunCostSummary:
    """Aggregate per-phase cost records into a :class:`RunCostSummary`."""
    dominant_phases: Dict[str, int] = {}
    dominant_cost: Dict[str, float] = {}
    total = 0.0
    wall = 0.0
    for rec in records:
        total += rec.cost
        wall += rec.wall_time
        dominant_phases[rec.dominant] = dominant_phases.get(rec.dominant, 0) + 1
        dominant_cost[rec.dominant] = dominant_cost.get(rec.dominant, 0.0) + rec.cost
    return RunCostSummary(
        phases=len(records),
        total_cost=total,
        dominant_phases=dominant_phases,
        dominant_cost=dominant_cost,
        wall_time=wall,
    )


def machine_cost_records(machine: Any) -> List[PhaseCostRecord]:
    """Cost records for ``machine`` — live if recorded, else rebuilt.

    Machines built with ``record_costs=True`` return their live records
    (which carry per-phase wall time).  Otherwise the records are rebuilt
    from the phase history and the per-phase charges, which yields
    identical terms, dominants, costs, contention histograms and op counts
    — only ``wall_time`` is 0.0 (it is not recoverable after the fact).
    """
    live = getattr(machine, "cost_records", None)
    if live:
        return list(live)
    from repro.core.bsp import BSP

    # Fault events carry their firing step, so rebuilt records recover them.
    faults_by_step: Dict[int, List[Any]] = {}
    for event in getattr(machine, "fault_events", ()):
        faults_by_step.setdefault(event.step, []).append(event.to_dict())

    rebuilt: List[PhaseCostRecord] = []
    if isinstance(machine, BSP):
        for rec, cost in zip(machine.history, machine.step_costs):
            rebuilt.append(
                build_superstep_cost_record(
                    rec.index, machine._cost_terms(rec), cost, rec,
                    faults=tuple(faults_by_step.get(rec.index, ())),
                    model=machine.model_label,
                )
            )
        return rebuilt
    for rec, cost in zip(machine.history, machine.phase_costs):
        rebuilt.append(
            build_phase_cost_record(
                rec.index, machine.model_label, machine._cost_terms(rec), cost, rec,
                faults=tuple(faults_by_step.get(rec.index, ())),
            )
        )
    return rebuilt


def dominant_fractions(machine_or_records: Any, digits: Optional[int] = 4) -> Dict[str, float]:
    """Cost-weighted dominant-term fractions for a machine or record list.

    The convenience the sweep drivers use: returns e.g.
    ``{"kappa": 0.62, "g*m_rw": 0.38}`` meaning 62% of the run's charge
    came from contention-bound phases.  ``digits`` rounds the fractions so
    they serialize stably into ``BENCH_*.json`` caches (pass ``None`` to
    keep full precision).
    """
    if isinstance(machine_or_records, list):
        records = machine_or_records
    else:
        records = machine_cost_records(machine_or_records)
    fractions = summarize(records).fractions
    if digits is None:
        return fractions
    return {term: round(value, digits) for term, value in fractions.items()}
