"""Periodic JSONL snapshots of the metrics registry.

A :class:`MetricsSnapshot` freezes one ``MetricsRegistry.collect()``
payload with a sequence number and two timestamps — wall-clock epoch
seconds (``t_wall``) and seconds since the emitting run started
(``t_rel``).  :class:`SnapshotWriter` appends snapshots to a JSONL file on
a fixed cadence (``interval`` seconds, default 1.0 or
``$REPRO_METRICS_INTERVAL``); the final snapshot of a run is marked
``final=True`` so a follower knows the stream is complete.

This is the transport behind two consumers:

* ``python -m repro campaign status --follow`` tails the snapshot file and
  renders live progress (:func:`live_status_line`) — the scheduler writes,
  the status process reads, and no one attaches to the worker processes.
* :func:`repro.obs.exporters.metrics_counter_events` turns a snapshot
  stream into Perfetto counter-lane events riding the same trace as the
  phase and scheduler spans.

The JSONL round trip is exact: ``read_snapshots`` returns snapshots equal
to the ones written (property- and unit-tested).  Counters are monotone
across a stream — snapshot *i+1* never reports a smaller counter value
than snapshot *i* (``tests/property/test_metrics_props.py``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Mapping, Optional, Tuple, Union

from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = [
    "MetricsSnapshot",
    "SnapshotWriter",
    "read_snapshots",
    "default_interval",
    "live_status_line",
    "SNAPSHOT_SCHEMA",
    "INTERVAL_ENV",
    "DEFAULT_INTERVAL",
]

#: Schema tag stamped into every snapshot line.
SNAPSHOT_SCHEMA = "repro.metrics/1"

#: Environment variable overriding the default snapshot cadence (seconds).
INTERVAL_ENV = "REPRO_METRICS_INTERVAL"

#: Snapshot cadence when neither the CLI flag nor the env var says otherwise.
DEFAULT_INTERVAL = 1.0


def default_interval() -> float:
    """The snapshot cadence: ``$REPRO_METRICS_INTERVAL`` or 1.0 seconds.

    Lenient like :func:`repro.analysis.parallel_sweep.default_jobs`: a
    malformed or non-positive value degrades to the default so library use
    never explodes mid-run.  The CLI validates the same variable strictly
    (exit 2) before it gets here — same split as ``REPRO_JOBS``.
    """
    env = os.environ.get(INTERVAL_ENV, "").strip()
    if not env:
        return DEFAULT_INTERVAL
    try:
        value = float(env)
    except ValueError:
        return DEFAULT_INTERVAL
    if value <= 0 or value != value or value == float("inf"):
        return DEFAULT_INTERVAL
    return value


def _labels_match(have: Mapping[str, Any], want: Mapping[str, str]) -> bool:
    """True when every wanted label pair appears in ``have`` (subset match)."""
    return all(have.get(k) == v for k, v in want.items())


@dataclass(frozen=True)
class MetricsSnapshot:
    """One frozen registry state: ``seq``-numbered, double-timestamped.

    ``metrics`` is the ``MetricsRegistry.collect()`` payload verbatim.
    ``final`` marks the last snapshot of a run (emitted on writer close),
    which is how a ``--follow`` reader knows to stop tailing.
    """

    seq: int
    t_wall: float
    t_rel: float
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    final: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; :meth:`from_dict` inverts it exactly."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "seq": self.seq,
            "t_wall": self.t_wall,
            "t_rel": self.t_rel,
            "final": self.final,
            "metrics": self.metrics,
        }

    @classmethod
    def capture(
        cls,
        registry: Optional[MetricsRegistry] = None,
        seq: int = 0,
        t_wall: Optional[float] = None,
        t_rel: float = 0.0,
        final: bool = False,
    ) -> "MetricsSnapshot":
        """Freeze ``registry``'s current state into a snapshot.

        The file-less counterpart of :meth:`SnapshotWriter.emit` (which
        now delegates here): ``python -m repro serve`` captures snapshots
        directly for its SSE stream without ever touching a JSONL file.
        """
        reg = REGISTRY if registry is None else registry
        return cls(
            seq=seq,
            t_wall=time.time() if t_wall is None else t_wall,
            t_rel=t_rel,
            metrics=reg.collect(),
            final=final,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        schema = data.get("schema", SNAPSHOT_SCHEMA)
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(f"unknown snapshot schema {schema!r}")
        return cls(
            seq=int(data["seq"]),
            t_wall=float(data["t_wall"]),
            t_rel=float(data["t_rel"]),
            metrics=[dict(m) for m in data.get("metrics", [])],
            final=bool(data.get("final", False)),
        )

    # -- lookup helpers ----------------------------------------------------

    def metric(self, name: str) -> Optional[Dict[str, Any]]:
        for metric in self.metrics:
            if metric.get("name") == name:
                return metric
        return None

    def value(self, name: str, labels: Optional[Mapping[str, Any]] = None) -> float:
        """A counter/gauge series value (0.0 when absent).

        ``labels`` matches as a *subset*: a sample counts when every
        wanted label pair appears in it, extra labels notwithstanding.
        That keeps roll-ups like :func:`live_status_line` working when
        the multi-tenant service stamps a ``tenant`` label onto the
        campaign series — ``{"status": "done"}`` sums over all tenants,
        ``{"status": "done", "tenant": "alice"}`` narrows to one.  With
        ``labels=None`` returns the sum over every series of the metric.
        """
        metric = self.metric(name)
        if metric is None:
            return 0.0
        want = None if labels is None else {k: str(v) for k, v in labels.items()}
        total = 0.0
        for sample in metric.get("samples", ()):
            if want is None or _labels_match(sample.get("labels", {}), want):
                total += float(sample.get("value", 0.0))
        return total

    def histogram_stats(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Tuple[int, float]:
        """``(count, sum)`` of a histogram, subset-matched like :meth:`value`."""
        metric = self.metric(name)
        if metric is None:
            return (0, 0.0)
        want = None if labels is None else {k: str(v) for k, v in labels.items()}
        count, total = 0, 0.0
        for sample in metric.get("samples", ()):
            if want is None or _labels_match(sample.get("labels", {}), want):
                count += int(sample.get("count", 0))
                total += float(sample.get("sum", 0.0))
        return (count, total)


class SnapshotWriter:
    """Appends registry snapshots to a JSONL file on a fixed cadence.

    The file is truncated on the first emit (a run owns its stream);
    every emitted snapshot is also kept on ``self.snapshots`` so the
    emitting process can hand the stream straight to the trace exporter
    without re-reading the file.  ``close()`` emits a ``final=True``
    snapshot unconditionally — even a sub-interval run produces at least
    one complete snapshot.
    """

    def __init__(
        self,
        path: str,
        registry: Optional[MetricsRegistry] = None,
        interval: Optional[float] = None,
    ) -> None:
        if interval is not None and not interval > 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.path = path
        self.registry = REGISTRY if registry is None else registry
        self.interval = default_interval() if interval is None else float(interval)
        self.snapshots: List[MetricsSnapshot] = []
        self._t0_wall = time.time()
        self._t0 = time.monotonic()
        self._last_emit: Optional[float] = None
        self._fh: Optional[IO[str]] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "SnapshotWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> Optional[MetricsSnapshot]:
        """Emit the final snapshot and close the file.  Idempotent."""
        if self._closed:
            return None
        snap = self.emit(final=True)
        self._closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return snap

    # -- emission ----------------------------------------------------------

    def maybe_emit(self) -> Optional[MetricsSnapshot]:
        """Emit iff at least ``interval`` seconds passed since the last emit."""
        now = time.monotonic()
        if self._last_emit is not None and now - self._last_emit < self.interval:
            return None
        return self.emit()

    def emit(self, final: bool = False) -> MetricsSnapshot:
        """Unconditionally snapshot the registry and append one JSONL line."""
        if self._closed:
            raise RuntimeError("snapshot writer is closed")
        now = time.monotonic()
        snap = MetricsSnapshot.capture(
            registry=self.registry,
            seq=len(self.snapshots),
            t_wall=self._t0_wall + (now - self._t0),
            t_rel=now - self._t0,
            final=final,
        )
        if self._fh is None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.write(json.dumps(snap.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()
        self.snapshots.append(snap)
        self._last_emit = now
        return snap


def read_snapshots(path: Union[str, IO[str]]) -> List[MetricsSnapshot]:
    """Parse a snapshot JSONL stream written by :class:`SnapshotWriter`.

    The round trip is exact: snapshots equal the ones written.  A torn
    final line (the writer died mid-write) is skipped rather than raising,
    so a live follower can read a file that is still being appended.
    """
    if isinstance(path, str):
        fh = open(path, "r", encoding="utf-8")
        owned = True
    else:
        fh, owned = path, False
    try:
        snapshots: List[MetricsSnapshot] = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                continue  # torn tail of a live stream
            snapshots.append(MetricsSnapshot.from_dict(data))
        return snapshots
    finally:
        if owned:
            fh.close()


def live_status_line(snapshot: MetricsSnapshot) -> str:
    """One human line of campaign progress from a snapshot.

    Renders done/cached/failed/retry counts, the ready frontier and
    in-flight sizes, the store hit-rate, and an ETA estimated as
    ``remaining * mean task latency / jobs`` from the task-latency
    histogram — everything read from the snapshot, nothing from the
    scheduler process.
    """
    done = snapshot.value("repro_campaign_tasks_total", {"status": "done"})
    cached = snapshot.value("repro_campaign_tasks_total", {"status": "cached"})
    failed = snapshot.value("repro_campaign_tasks_total", {"status": "failed"})
    retries = snapshot.value("repro_campaign_retries_total")
    total = snapshot.value("repro_campaign_tasks")
    frontier = snapshot.value("repro_campaign_frontier_size")
    in_flight = snapshot.value("repro_campaign_in_flight")
    hits = snapshot.value("repro_store_hits_total")
    misses = snapshot.value("repro_store_misses_total")
    lookups = hits + misses
    hit_rate = f"{hits / lookups:.0%}" if lookups else "-"
    complete = done + cached
    parts = [
        f"[{snapshot.t_rel:7.1f}s]",
        f"{int(complete)}/{int(total)} done" if total else f"{int(complete)} done",
        f"({int(cached)} cached)" if cached else "",
        f"{int(failed)} failed" if failed else "",
        f"{int(retries)} retried" if retries else "",
        f"frontier {int(frontier)}",
        f"in-flight {int(in_flight)}",
        f"store hit-rate {hit_rate}",
    ]
    remaining = total - complete - failed
    if remaining > 0:
        count, latency_sum = snapshot.histogram_stats("repro_campaign_task_seconds")
        jobs = snapshot.value("repro_campaign_jobs") or 1.0
        if count:
            eta = remaining * (latency_sum / count) / jobs
            parts.append(f"ETA {eta:.1f}s")
    if snapshot.final:
        parts.append("(final)")
    return "  ".join(p for p in parts if p)
