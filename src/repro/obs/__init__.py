"""repro.obs — cost-provenance observability for the model simulators.

Every number the simulators report is an evaluation of a small ``max()``:
``max(m_op, g*m_rw, kappa)`` on the QSM, ``max(m_op, g*m_rw, g*kappa)`` on
the s-QSM, ``max(w, g*h, L)`` on the BSP, and ``mu * b`` big-steps on the
GSM.  This package records *which* term of that max set the charge, phase
by phase, so a measured curve can be explained rather than just plotted:

* :class:`~repro.obs.records.PhaseCostRecord` — one committed phase or
  superstep: per-term values, the winning (dominant) term, the contention
  histogram over cells, per-processor op counts, and wall-clock time.
* :func:`~repro.obs.records.summarize` /
  :class:`~repro.obs.records.RunCostSummary` — per-run aggregation into
  dominant-term counts and cost-weighted dominant-term fractions.
* :func:`~repro.obs.records.machine_cost_records` — records for any
  machine, taken live (``record_costs=True``) or rebuilt from the phase
  history after the fact.
* :mod:`~repro.obs.exporters` — JSONL event streams
  (:func:`~repro.obs.exporters.write_jsonl` /
  :func:`~repro.obs.exporters.read_jsonl` round-trip) and Chrome
  trace-event JSON (:func:`~repro.obs.exporters.write_chrome_trace`),
  loadable in Perfetto (https://ui.perfetto.dev) for timeline inspection.
  Lane (pid) allocation is centralised in
  :data:`~repro.obs.exporters.TRACE_LANES`;
  :func:`~repro.obs.exporters.write_combined_trace` merges scheduler
  spans, metrics counter lanes and phase rows into one view.
* :mod:`~repro.obs.metrics` — the *runtime* counterpart of the records: a
  process-wide, dependency-free registry of counters, gauges and log2
  histograms threaded through the phase engines, the campaign scheduler
  and the sweep runner; zero-cost when disabled (one predicate test per
  site), like ``record_costs=``.
* :mod:`~repro.obs.snapshot` — periodic
  :class:`~repro.obs.snapshot.MetricsSnapshot` JSONL emission and the
  live-status rendering behind ``python -m repro campaign status
  --follow``.
* :mod:`~repro.obs.regress` — the bench-regression watchdog behind
  ``python -m repro bench check``: noise-aware baseline diffs of
  ``BENCH_*.json`` / store-backed points with a markdown report.
* :mod:`~repro.obs.tracing` — distributed spans (``repro.trace/1``):
  W3C-``traceparent``-style context propagated from the HTTP front door
  through the scheduler and the worker fabric down to per-phase cost
  records, plus exact p50/p95/p99 SLO summaries over span durations;
  zero-cost unless ``$REPRO_TRACE`` switches it on.

Machines collect records when constructed with ``record_costs=True`` (the
flag mirrors ``record_trace=``); the collection cost is zero when the flag
is off — the phase-issue hot paths are untouched and the commit pays one
predicate test.  See docs/OBSERVABILITY.md for the full schema and a
worked dominant-term crossover example.
"""

from repro.obs.records import (
    PhaseCostRecord,
    RunCostSummary,
    dominant_fractions,
    machine_cost_records,
    summarize,
)
from repro.obs.exporters import (
    chrome_trace_events,
    combined_trace_events,
    lane_pid,
    metrics_counter_events,
    read_jsonl,
    scheduler_trace_events,
    write_chrome_trace,
    write_combined_trace,
    write_jsonl,
    write_scheduler_trace,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, render_metrics_table
from repro.obs.regress import RegressionReport, compare_bench
from repro.obs.snapshot import MetricsSnapshot, SnapshotWriter, read_snapshots
from repro.obs.tracing import (
    Span,
    SpanContext,
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    parse_traceparent,
    slo_summary,
)

__all__ = [
    "PhaseCostRecord",
    "RunCostSummary",
    "summarize",
    "dominant_fractions",
    "machine_cost_records",
    "write_jsonl",
    "read_jsonl",
    "write_chrome_trace",
    "chrome_trace_events",
    "scheduler_trace_events",
    "write_scheduler_trace",
    "metrics_counter_events",
    "combined_trace_events",
    "write_combined_trace",
    "lane_pid",
    "REGISTRY",
    "MetricsRegistry",
    "render_metrics_table",
    "MetricsSnapshot",
    "SnapshotWriter",
    "read_snapshots",
    "RegressionReport",
    "compare_bench",
    "Span",
    "SpanContext",
    "TRACER",
    "Tracer",
    "enable_tracing",
    "disable_tracing",
    "parse_traceparent",
    "slo_summary",
]
