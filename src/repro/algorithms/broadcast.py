"""Broadcasting one value to n processors / cells.

The tight bound for broadcasting is Theta(g log n / log g) on the QSM and
Theta(g log n) on the s-QSM (Adler, Gibbons, Matias & Ramachandran [1]), and
O(L log p / log(L/g)) on the BSP.  The matching algorithms are fan-out trees
whose fan-out is tuned to the model's contention charge:

* **QSM** — *read*-based doubling with fan-in ``k = g``: each new processor
  reads the source cell of its group; a phase has ``m_rw = 1`` and
  contention ``k``, so it costs ``max(g, k) = g``, and ``log_k n`` phases
  suffice.
* **s-QSM** — contention costs ``g`` per unit, so fan-in 2 is optimal:
  ``O(g log n)``.
* **BSP** — fan-out ``L/g`` sends per holder: ``h = L/g`` so each superstep
  costs ``L``; ``log_{L/g} p`` supersteps.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, bsp_fanin
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["broadcast_shared", "broadcast_bsp"]

SharedMachine = Union[QSM, SQSM, GSM]


def _shared_fanout(machine: SharedMachine, fan_in: Optional[int]) -> int:
    if fan_in is not None:
        if fan_in < 2:
            raise ValueError(f"fan-in must be >= 2, got {fan_in}")
        return fan_in
    if isinstance(machine, SQSM):
        return 2
    if isinstance(machine, QSM):
        # Reads are charged raw contention: fan-in g keeps each phase at cost g.
        return max(2, int(machine.params.g))
    if isinstance(machine, GSM):
        prm = machine.params
        return max(2, int(prm.beta))
    raise TypeError(f"unsupported machine: {type(machine)!r}")


def broadcast_shared(
    machine: SharedMachine,
    value: Any,
    n: int,
    fan_in: Optional[int] = None,
    base: int = 0,
) -> RunResult:
    """Broadcast ``value`` into cells ``base .. base+n-1`` by read-doubling.

    After the run every one of the ``n`` cells holds ``value`` (on the GSM,
    a tuple containing it).  Returns the list of final cell values.

    Phase structure: cells ``[0, have)`` already hold the value; each of the
    next ``(k-1) * have`` processors reads one holder cell (``k-1`` readers
    per cell, plus conceptually the holder keeping its copy: contention
    ``k-1 < k``) and writes its own cell in the next phase.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = _shared_fanout(machine, fan_in)
    meter = CostMeter(machine)

    # Seed: processor 0 writes the value into the first cell.
    with machine.phase() as ph:
        ph.write(0, base, value)

    have = 1
    while have < n:
        new = min(n - have, (k - 1) * have)
        # Reader j (0-based among the new ones) reads holder cell j % have.
        handles = []
        with machine.phase() as ph:
            for j in range(new):
                proc = have + j
                src = base + (j % have)
                handles.append((proc, ph.read(proc, src)))
        with machine.phase() as ph:
            for idx, (proc, handle) in enumerate(handles):
                got = handle.value
                if isinstance(machine, GSM) and isinstance(got, tuple):
                    got = got[0]
                ph.write(proc, base + have + idx, got)
        have += new

    final = [machine.peek(base + i) for i in range(n)]
    return meter.result(final, fan_in=k)


def broadcast_bsp(machine: BSP, value: Any, fan_out: Optional[int] = None) -> RunResult:
    """Broadcast ``value`` from component 0 to all ``p`` components.

    Each holder sends to ``k`` new components per superstep (``h = k``, cost
    ``max(g*k, L)``); with the default ``k = L/g`` each superstep costs
    exactly ``L`` and ``ceil(log_{k+1} p)`` supersteps suffice.

    On return every component's store has ``store[i]['bcast'] = value``.
    """
    k = fan_out if fan_out is not None else bsp_fanin(machine)
    if k < 1:
        raise ValueError(f"fan-out must be >= 1, got {k}")
    meter = CostMeter(machine)
    p = machine.p
    machine.store[0]["bcast"] = value

    have = 1
    while have < p:
        with machine.superstep() as ss:
            sends = 0
            for holder in range(have):
                payload = machine.store[holder]["bcast"]
                msgs = [
                    (have + holder * k + j, payload)
                    for j in range(k)
                    if have + holder * k + j < p
                ]
                ss.send_block(holder, msgs)
                sends += len(msgs)
        for target in range(have, min(p, have + have * k)):
            inbox = machine.inbox(target)
            if inbox:
                machine.store[target]["bcast"] = inbox[0][1]
        have = min(p, have + have * k)

    values = [machine.store[i].get("bcast") for i in range(p)]
    return meter.result(values, fan_out=k)
