"""Linear Approximate Compaction (Section 8, middle paragraph).

**Problem (h-LAC):** given an array of ``n`` cells of which at most ``h``
hold one item each (the rest empty), insert the items into an array of size
``O(h)``.

Two implementations:

* :func:`lac_dart` — randomized dart throwing, a simplified adaptation of
  the QRQW algorithm of Gibbons, Matias & Ramachandran [9] that the paper
  cites for its ``O(sqrt(g log n) + g log log n)`` w.h.p. QSM upper bound.
  Round ``t`` uses a *fresh* target segment of ``m_t ~ 4h / 2^t`` slots:
  every live item writes its id into a random slot (arbitrary-winner
  resolves collisions), reads it back, and either claims the slot or retries
  in round ``t+1``.  Fresh segments mean a claimed slot is never clobbered,
  and the expected number of survivors of a round is ``live^2 / m_t``, so
  the live count decays doubly exponentially: ``O(log log n)`` rounds w.h.p.
  The segments sum to ``<= 8h + O(log n)`` cells — a valid O(h) destination.
  Our simplification relative to [9]: we do not micro-balance the per-phase
  contention against the gap (the source of their ``sqrt(g log n)`` term);
  the measured cost is ``O(g log log n + max-contention)`` and the benches
  report the measured contention so the gap to the paper's bound is visible.
* :func:`lac_prefix` — deterministic exact compaction by prefix sums
  (``O(g k log_k n)`` time, here k=2): the baseline the paper mentions as
  the best known *rounds* algorithm for LAC.

Both return an output array with the items packed (dart: at their claimed
slots inside O(h) cells; prefix: exactly ranked) and ``None`` elsewhere;
the verifier in :mod:`repro.problems.compaction` checks the LAC contract.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.algorithms.prefix import prefix_sums
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM
from repro.util.seeding import RngLike, derive_rng

__all__ = ["lac_dart", "lac_prefix", "lac_prefix_rounds", "lac_bsp"]

SharedMachine = Union[QSM, SQSM, GSM]


def _items_of(array: Sequence[Any]) -> List[Tuple[int, Any]]:
    return [(i, v) for i, v in enumerate(array) if v is not None]


def lac_dart(
    machine: SharedMachine,
    array: Sequence[Any],
    h: Optional[int] = None,
    expansion: int = 4,
    seed: RngLike = None,
    max_rounds: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Randomized LAC by dart throwing into geometrically shrinking segments.

    Parameters
    ----------
    array:
        Input cells; ``None`` marks empty.
    h:
        Bound on the number of items (defaults to the actual count; the
        algorithm only uses it to size the destination).
    expansion:
        First segment holds ``expansion * h`` slots.
    max_rounds:
        Safety cap; when exhausted the stragglers are placed by the
        deterministic :func:`lac_prefix` fallback (counted in ``extra``).

    Returns the destination array (size ``O(h)``), with ``extra`` reporting
    ``rounds``, ``max_contention`` and ``fallback_items``.
    """
    n = len(array)
    items = _items_of(array)
    count = len(items)
    if h is None:
        h = count
    if count > h:
        raise ValueError(f"array holds {count} items but h={h}")
    if expansion < 2:
        raise ValueError(f"expansion must be >= 2, got {expansion}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    rng = derive_rng(seed)
    if max_rounds is None:
        max_rounds = 4 * int(math.ceil(math.log2(max(4, math.log2(max(4, n)))))) + 8

    if count == 0:
        return meter.result([], rounds=0, max_contention=0, fallback_items=0)

    # Destination: consecutive fresh segments.  Segment t has
    # max(expansion * h // 2**t, 2 * live) slots, so it is always at least
    # twice the live count and the total stays O(h).
    out_cells: List[int] = []  # absolute addresses, in destination order
    segments: List[Tuple[int, int]] = []  # (base, size)
    placed: dict = {}  # absolute address -> item value
    live = list(items)  # (orig_index, value)
    rounds = 0
    max_contention = 0

    while live and rounds < max_rounds:
        m_t = max(expansion * h // (2**rounds), 2 * len(live), 2)
        seg_base = alloc.alloc(m_t)
        segments.append((seg_base, m_t))
        # Phase 1: every live item darts into a random slot of the fresh
        # segment, writing a unique tag (its original index).
        darts: List[Tuple[int, Any, int]] = []  # (orig_idx, value, slot_addr)
        with machine.phase() as ph:
            for orig_idx, value in live:
                slot = seg_base + int(rng.integers(0, m_t))
                ph.write(orig_idx, slot, orig_idx)
                darts.append((orig_idx, value, slot))
        max_contention = max(max_contention, machine.history[-1].kappa)
        # Phase 2: each dart-thrower reads its slot back; the tag that
        # survived the arbitrary-winner write owns the slot.
        handles = []
        with machine.phase() as ph:
            for orig_idx, value, slot in darts:
                handles.append((orig_idx, value, slot, ph.read(orig_idx, slot)))
        max_contention = max(max_contention, machine.history[-1].kappa)
        survivors: List[Tuple[int, Any]] = []
        winners: List[Tuple[int, Any, int]] = []
        for orig_idx, value, slot, handle in handles:
            got = handle.value
            if isinstance(machine, GSM) and isinstance(got, tuple):
                # Strong queuing keeps every tag; lowest-indexed writer wins
                # by convention so the protocol still elects one owner.
                got = min(got)
            if got == orig_idx:
                winners.append((orig_idx, value, slot))
            else:
                survivors.append((orig_idx, value))
        # Phase 3: winners deposit their payloads (contention 1 per slot).
        if winners:
            with machine.phase() as ph:
                for orig_idx, value, slot in winners:
                    ph.write(orig_idx, slot, value)
            for _, value, slot in winners:
                placed[slot] = value
        live = survivors
        rounds += 1

    fallback_items = len(live)
    if live:
        # Deterministic mop-up for the (w.h.p. empty) remainder.
        tail = [None] * max(1, 2 * len(live))
        for j, (_, value) in enumerate(live):
            tail[j] = value
        seg_base = alloc.alloc(len(tail))
        segments.append((seg_base, len(tail)))
        with machine.phase() as ph:
            for j, v in enumerate(tail):
                if v is not None:
                    ph.write(j, seg_base + j, v)
        for j, v in enumerate(tail):
            if v is not None:
                placed[seg_base + j] = v

    # Materialise the destination array in segment order.
    out: List[Any] = []
    for seg_base, size in segments:
        for off in range(size):
            out.append(placed.get(seg_base + off))
    return meter.result(
        out,
        rounds=rounds,
        max_contention=max_contention,
        fallback_items=fallback_items,
        destination_size=len(out),
    )


def lac_prefix(
    machine: SharedMachine,
    array: Sequence[Any],
    h: Optional[int] = None,
    fan_in: int = 2,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Deterministic exact compaction: rank items by prefix sums, then write.

    Time ``O(g * fan_in * log n / log fan_in)``; output has size exactly the
    item count (stronger than the O(h) the LAC contract requires).
    """
    n = len(array)
    items = _items_of(array)
    if h is not None and len(items) > h:
        raise ValueError(f"array holds {len(items)} items but h={h}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    if n == 0 or not items:
        return meter.result([], destination_size=0)

    indicator = [0 if v is None else 1 for v in array]
    scan = prefix_sums(machine, indicator, fan_in=fan_in, alloc=alloc)
    ranks = scan.value  # inclusive: rank of item at i is ranks[i] - 1

    out_base = alloc.alloc(len(items))
    with machine.phase() as ph:
        for i, v in enumerate(array):
            if v is not None:
                ph.write(i, out_base + ranks[i] - 1, v)

    out = [machine.peek(out_base + j) for j in range(len(items))]
    if isinstance(machine, GSM):
        out = [v[0] if isinstance(v, tuple) else v for v in out]
    return meter.result(out, destination_size=len(out))


def lac_prefix_rounds(
    machine: SharedMachine,
    array: Sequence[Any],
    p: int,
    h: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """p-processor LAC that computes in rounds (the Section 8 baseline).

    Structure: one round in which each processor ranks its block of
    ``ceil(n/p)`` cells via :func:`~repro.algorithms.prefix.prefix_sums_rounds`
    over the indicator array, then one round in which each processor writes
    its block's items to their ranked destinations (at most ``n/p`` writes
    per processor — inside the round budget).  Round count
    ``O(log n / log(n/p))``, matching the prefix-sums entry the paper quotes
    under Table 1d.
    """
    from repro.algorithms.prefix import prefix_sums_rounds

    n = len(array)
    items = _items_of(array)
    if h is not None and len(items) > h:
        raise ValueError(f"array holds {len(items)} items but h={h}")
    if p < 1 or p > max(n, 1):
        raise ValueError(f"need 1 <= p <= n, got p={p}, n={n}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    if n == 0 or not items:
        return meter.result([], destination_size=0, p=p)

    indicator = [0 if v is None else 1 for v in array]
    scan = prefix_sums_rounds(machine, indicator, p=p, alloc=alloc)
    ranks = scan.value

    out_base = alloc.alloc(len(items))
    block = -(-n // p)
    with machine.phase() as ph:
        for proc in range(p):
            lo, hi = proc * block, min((proc + 1) * block, n)
            to_write = [
                (out_base + ranks[i] - 1, array[i])
                for i in range(lo, hi)
                if array[i] is not None
            ]
            ph.write_block(proc, to_write)
            ph.local(proc, max(1, len(to_write)))

    out = [machine.peek(out_base + j) for j in range(len(items))]
    if isinstance(machine, GSM):
        out = [v[0] if isinstance(v, tuple) else v for v in out]
    return meter.result(out, destination_size=len(out), p=p)


def lac_bsp(machine, array: Sequence[Any], h: Optional[int] = None) -> RunResult:
    """LAC on the BSP: local compaction, a scan over counts, one routing step.

    Each component compacts its ``ceil(n/p)`` cells locally, the per-
    component item counts are scanned with an (L/g)-ary tree, and one
    superstep routes every item to its ranked owner (an ``O(n/p)``-relation
    when items are spread; the measured ``h`` shows up in the superstep
    cost).  Output: the compacted items in input order, gathered from
    ``store[i]['lac_out']``.
    """
    from repro.algorithms.prefix import prefix_sums_bsp
    from repro.core.bsp import BSP as _BSP

    if not isinstance(machine, _BSP):
        raise TypeError(f"lac_bsp expects a BSP machine, got {type(machine)!r}")
    n = len(array)
    items = _items_of(array)
    if h is not None and len(items) > h:
        raise ValueError(f"array holds {len(items)} items but h={h}")
    meter = CostMeter(machine)
    if n == 0 or not items:
        return meter.result([], destination_size=0)
    p = machine.p
    machine.scatter(list(array), key="lac_in")

    # Superstep 1: local compaction + counts.
    local_items = []
    counts = []
    with machine.superstep() as ss:
        for i in range(p):
            block = machine.store[i]["lac_in"]
            ss.local(i, max(1, len(block)))
            mine = [v for v in block if v is not None]
            local_items.append(mine)
            counts.append(len(mine))

    # Scan the counts (reuses the BSP prefix-sums tree).
    scan = prefix_sums_bsp(machine, counts)
    offsets = [incl - c for incl, c in zip(scan.value, counts)]

    # Superstep: route items to their ranked owners (quota ceil(total/p)).
    total = sum(counts)
    quota = -(-total // p)
    incoming = [[] for _ in range(p)]
    with machine.superstep() as ss:
        for i in range(p):
            ss.local(i, max(1, len(local_items[i])))
            msgs = []
            for j, v in enumerate(local_items[i]):
                rank = offsets[i] + j
                owner = rank // quota
                if owner == i:
                    incoming[i].append((rank, v))
                else:
                    msgs.append((owner, (rank, v)))
            ss.send_block(i, msgs)
    for i in range(p):
        for _, payload in machine.inbox(i):
            incoming[i].append(payload)

    out = [None] * total
    with machine.superstep() as ss:
        for i in range(p):
            ss.local(i, max(1, len(incoming[i])))
            machine.store[i]["lac_out"] = sorted(incoming[i])
            for rank, v in incoming[i]:
                out[rank] = v
    return meter.result(out, destination_size=total, quota=quota)
