"""Upper-bound algorithms (Section 8) running on the core simulators.

Each module implements one problem family, on whichever of the QSM, s-QSM,
GSM and BSP models the paper gives bounds for.  All functions share the same
shape: they take a machine, the input, and tuning knobs (fan-in, seeds),
execute real phases/supersteps on the machine, and return a
:class:`~repro.algorithms.common.RunResult` carrying the answer plus the
simulated cost accounting.  Correctness of every algorithm is checked by the
verifiers in :mod:`repro.problems`.

Algorithm-to-claim map (Section 8):

========================  ====================================================
Module / function          Paper claim
========================  ====================================================
``parity.parity_tree``     O(g log n) on s-QSM (tight: Theta(g log n));
                           O(L log n / log(L/g)) on BSP via fan-in L/g
``parity.parity_blocks``   O(g log n / log log g) on QSM (depth-2 circuit
                           emulation); O(g log n / log g) with unit-time
                           concurrent reads — matches Theorem 3.1
``or_.or_tree_writes``     O((g / log g) log n) on QSM via fan-in-g write
                           tournament; O(g log n) on s-QSM with fan-in 2
``broadcast.broadcast``    Theta(g log n / log g) on QSM, Theta(g log n) on
                           s-QSM, O(L log p / log(L/g)) on BSP (from [1])
``prefix.prefix_sums``     O(g log n) shared-memory scan; the rounds-mode
                           variant matches the round lower bounds of Table 1
``compaction.lac_*``       LAC: randomized dart throwing (QRQW adaptation of
                           [9]) and deterministic prefix-sum compaction
``load_balance``           O(1 + h/n) per-processor redistribution
``padded_sort``            padded U[0,1] sort via bucketing + compaction
``sorting.sample_sort``    BSP sample sort ('sorting' of Section 3's
                           reductions)
``list_ranking``           pointer-jumping list ranking ('related problem'
                           of parity)
``reductions``             size-preserving reductions parity -> list ranking
                           and parity -> sorting (Section 3, closing note)
========================  ====================================================

The post-1998 machines in :mod:`repro.models` reuse this suite: PEM (a
shared-memory machine) runs ``parity_tree`` / ``or_tree_writes`` /
``list_rank`` / ``sort_shared`` / ``lac_prefix`` as-is with B-ary fan-ins
picked by the shared helpers, and MPC (a BSP subclass) runs the ``*_bsp``
functions plus the s-ary re-tunings in :mod:`repro.algorithms.mpc`
(``parity_mpc``, ``or_mpc``, ``list_rank_mpc``).
"""

from repro.algorithms.common import Allocator, RunResult

__all__ = ["Allocator", "RunResult"]
