"""Load balancing (Section 6.2 problem statement).

**Problem:** ``h`` objects distributed among ``n`` processors; redistribute
so that every processor holds ``O(1 + h/n)`` objects.

The implementation is the classic prefix-sums redistribution: rank every
object globally (scan over per-processor counts), then write object ``r`` to
shared cell ``r`` and let processor ``j`` collect cells
``j*ceil(h/n) .. (j+1)*ceil(h/n)-1``.  Each processor holds *exactly*
``ceil(h/n)`` or fewer objects afterwards — stronger than the O() contract.

Cost: ``O(g * (maxload + h/n + log n))`` where ``maxload`` is the largest
initial per-processor load (a processor must issue one write per object it
holds, and one read per object it receives).  The randomized lower bound for
this problem is Theorem 6.1's ``Omega(g log log n / log g)`` on the QSM —
the gap between this simple algorithm and that bound is what the `T1a` bench
row shows.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.algorithms.prefix import prefix_sums
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["load_balance"]

SharedMachine = Union[QSM, SQSM, GSM]


def load_balance(
    machine: SharedMachine,
    loads: Sequence[Sequence[Any]],
    fan_in: int = 2,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Redistribute ``loads[i]`` (processor i's objects) evenly.

    Returns the new per-processor assignment as a list of lists, with
    ``extra['per_proc_max']`` reporting the achieved maximum load.
    """
    n = len(loads)
    if n == 0:
        return RunResult(value=[], time=0.0, phases=0)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    counts = [len(objs) for objs in loads]
    h = sum(counts)
    if h == 0:
        return meter.result([[] for _ in range(n)], per_proc_max=0)

    # Global ranks via a scan over the counts.
    scan = prefix_sums(machine, counts, fan_in=fan_in, alloc=alloc)
    offsets = [incl - c for incl, c in zip(scan.value, counts)]

    # Every processor writes its objects to their ranked cells.
    staging = alloc.alloc(h)
    with machine.phase() as ph:
        for i, objs in enumerate(loads):
            if objs:
                ph.local(i, len(objs))
            for j, obj in enumerate(objs):
                ph.write(i, staging + offsets[i] + j, obj)

    # Every processor collects its quota of ceil(h/n) consecutive cells.
    quota = -(-h // n)
    handles: List[List[Any]] = []
    with machine.phase() as ph:
        for i in range(n):
            lo, hi = i * quota, min((i + 1) * quota, h)
            handles.append([ph.read(i, staging + r) for r in range(lo, hi)])

    result: List[List[Any]] = []
    for hs in handles:
        got = []
        for hnd in hs:
            v = hnd.value
            if isinstance(machine, GSM) and isinstance(v, tuple):
                v = v[0]
            got.append(v)
        result.append(got)
    per_proc_max = max((len(r) for r in result), default=0)
    return meter.result(result, per_proc_max=per_proc_max, quota=quota, h=h)
