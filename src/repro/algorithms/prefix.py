"""Prefix sums (scan) — the workhorse substrate for the rounds upper bounds.

Section 8 notes that the best algorithms *that compute in rounds* for
parity, OR and LAC are the simple prefix-sums algorithms; their round counts
match the Table 1 round lower bounds on the s-QSM and BSP
(``Theta(log n / log(n/p))``) and on the QSM for OR
(``Theta(log n / log(gn/p))`` via write tournaments, see :mod:`or_`).

Three implementations:

* :func:`prefix_sums` — k-ary up/down sweep with unbounded processors;
  O(g * k * log_k n) time on QSM/s-QSM (k=2 gives the classic O(g log n)).
* :func:`prefix_sums_rounds` — p-processor, computes in rounds: one round of
  local summing over blocks of n/p, a (n/p)-ary tree over the p block sums
  (each level is one round), then one round of local prefix writing.
* :func:`prefix_sums_bsp` — the BSP version with fan-in L/g.

All return the inclusive prefix array under ``+`` (any values addable by
``+`` work; the tests use ints).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, bsp_fanin, fresh_allocator
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["prefix_sums", "prefix_sums_rounds", "prefix_sums_bsp"]

SharedMachine = Union[QSM, SQSM, GSM]


def _unwrap(machine: SharedMachine, value: Any) -> Any:
    """GSM cells hold tuples; fetch the (single) payload uniformly."""
    if isinstance(machine, GSM) and isinstance(value, tuple):
        if len(value) != 1:
            raise ValueError(f"expected singleton GSM cell, found {value!r}")
        return value[0]
    return value


def prefix_sums(
    machine: SharedMachine,
    values: Sequence[Any],
    fan_in: int = 2,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Inclusive k-ary scan with one (virtual) processor per tree node.

    Cost: ``2 * ceil(log_k n)`` read phases and as many write phases, each
    of cost ``O(g * k)`` (fan-in reads/writes dominate; contention is 1
    throughout).  Returns the inclusive prefix list.
    """
    n = len(values)
    if n == 0:
        return RunResult(value=[], time=0.0, phases=0)
    if fan_in < 2:
        raise ValueError(f"fan-in must be >= 2, got {fan_in}")
    k = fan_in
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    # ---- build levels: level 0 = input, level i+1 = k-ary group sums -----
    level_base: List[int] = [alloc.alloc(n)]
    level_size: List[int] = [n]
    machine.load(list(values), base=level_base[0])
    # Local copies the leader processors legitimately hold after reading.
    level_vals: List[List[Any]] = [list(values)]

    proc_counter = 0
    while level_size[-1] > 1:
        m = level_size[-1]
        groups = -(-m // k)
        base_next = alloc.alloc(groups)
        sums: List[Any] = []
        handles = []
        with machine.phase() as ph:
            for j in range(groups):
                proc = proc_counter + j
                hs = ph.read_block(
                    proc,
                    range(level_base[-1] + j * k, level_base[-1] + min((j + 1) * k, m)),
                )
                handles.append((proc, hs))
        with machine.phase() as ph:
            for j, (proc, hs) in enumerate(handles):
                got = [_unwrap(machine, v) for v in hs.values]
                total = got[0]
                for v in got[1:]:
                    total = total + v
                ph.local(proc, len(got))
                ph.write(proc, base_next + j, total)
                sums.append(total)
        proc_counter += groups
        level_base.append(base_next)
        level_size.append(groups)
        level_vals.append(sums)

    # ---- downsweep: exclusive offsets flow from the root ------------------
    # offsets[i][j] = sum of all elements strictly before group j at level i.
    top = len(level_size) - 1
    offset_base: List[Optional[int]] = [None] * (top + 1)
    offset_base[top] = alloc.alloc(1)
    with machine.phase() as ph:
        ph.write(0, offset_base[top], _zero_like(level_vals[top][0]))

    for lvl in range(top, 0, -1):
        m = level_size[lvl - 1]
        groups = level_size[lvl]
        offset_base[lvl - 1] = alloc.alloc(m)
        handles = []
        with machine.phase() as ph:
            for j in range(groups):
                proc = proc_counter + j
                handles.append((j, proc, ph.read(proc, offset_base[lvl] + j)))
        with machine.phase() as ph:
            for j, proc, handle in handles:
                group_offset = _unwrap(machine, handle.value)
                running = group_offset
                lo = j * k
                hi = min((j + 1) * k, m)
                ph.local(proc, hi - lo)
                items = []
                for i in range(lo, hi):
                    items.append((offset_base[lvl - 1] + i, running))
                    running = running + level_vals[lvl - 1][i]
                ph.write_block(proc, items)
        proc_counter += groups

    # The inclusive prefix at i is offset[0][i] + value[i]; read them out.
    with machine.phase() as ph:
        handles = [ph.read(i, offset_base[0] + i) for i in range(n)]
    prefix = [
        _unwrap(machine, handles[i].value) + level_vals[0][i] for i in range(n)
    ]
    return meter.result(prefix, fan_in=k, levels=top)


def _zero_like(sample: Any) -> Any:
    """Additive identity compatible with ``sample`` (int/float/str/list/tuple)."""
    if isinstance(sample, bool):
        return 0
    if isinstance(sample, (int, float, complex)):
        return type(sample)(0)
    if isinstance(sample, str):
        return ""
    if isinstance(sample, (list, tuple)):
        return type(sample)()
    raise TypeError(f"no additive identity known for {type(sample)!r}")


def prefix_sums_rounds(
    machine: SharedMachine,
    values: Sequence[Any],
    p: int,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """p-processor prefix sums that computes in rounds.

    Round structure (each phase fits the ``O(g n / p)`` round budget):

    1. one round: processor ``i`` reads its block of ``ceil(n/p)`` inputs,
    2. ``O(log p / log(n/p))`` rounds: an ``(n/p)``-ary scan tree over the
       ``p`` block sums,
    3. one round: processor ``i`` writes its block's ``ceil(n/p)`` prefixes.

    Total rounds ``O(1 + log p / log(n/p)) = O(log n / log(n/p))`` —
    the matching upper bound for the last row block of Table 1.
    """
    n = len(values)
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if p > max(n, 1):
        raise ValueError(f"rounds mode needs p <= n, got p={p}, n={n}")
    if n == 0:
        return RunResult(value=[], time=0.0, phases=0)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    block = -(-n // p)
    in_base = alloc.alloc(n)
    machine.load(list(values), base=in_base)

    # Round 1: local block sums (one phase, m_rw = block <= ceil(n/p)).
    blocks: List[List[Any]] = []
    handles = []
    with machine.phase() as ph:
        for i in range(p):
            lo, hi = i * block, min((i + 1) * block, n)
            handles.append(ph.read_block(i, range(in_base + lo, in_base + hi)))
    block_sums: List[Any] = []
    sums_base = alloc.alloc(p)
    with machine.phase() as ph:
        for i, hs in enumerate(handles):
            got = [_unwrap(machine, v) for v in hs.values]
            blocks.append(got)
            if got:
                total = got[0]
                for v in got[1:]:
                    total = total + v
            else:
                total = _zero_like(values[0])
            ph.local(i, max(1, len(got)))
            ph.write(i, sums_base + i, total)
            block_sums.append(total)

    # Rounds 2..: (block)-ary scan over the p block sums, reusing prefix_sums
    # with fan-in n/p so every phase stays inside the round budget.
    fan = max(2, block)
    inner = prefix_sums(machine, block_sums, fan_in=fan, alloc=alloc)
    incl = inner.value
    # Exclusive offsets per block.
    offsets = [_zero_like(block_sums[0])] + incl[:-1]

    # Final round: each processor writes its block's inclusive prefixes.
    out_base = alloc.alloc(n)
    with machine.phase() as ph:
        for i in range(p):
            running = offsets[i]
            lo = i * block
            ph.local(i, max(1, len(blocks[i])))
            items = []
            for j, v in enumerate(blocks[i]):
                running = running + v
                items.append((out_base + lo + j, running))
            ph.write_block(i, items)

    prefix = [_unwrap(machine, machine.peek(out_base + j)) for j in range(n)]
    return meter.result(prefix, p=p, block=block, fan_in=fan)


def prefix_sums_bsp(machine: BSP, values: Sequence[Any]) -> RunResult:
    """BSP prefix sums: local scan, (L/g)-ary tree over block sums, local add.

    Supersteps: ``O(log p / log(L/g))`` tree levels (each costing ``L``)
    plus O(1) local supersteps of work ``O(n/p)``.
    """
    n = len(values)
    p = machine.p
    if n == 0:
        return RunResult(value=[], time=0.0, phases=0)
    meter = CostMeter(machine)
    machine.scatter(list(values), key="scan_in")
    k = bsp_fanin(machine)

    # Local inclusive scans + block sums.
    local_prefix: List[List[Any]] = []
    block_sums: List[Any] = []
    with machine.superstep() as ss:
        for i in range(p):
            block = machine.store[i]["scan_in"]
            ss.local(i, max(1, len(block)))
            running = None
            pref = []
            for v in block:
                running = v if running is None else running + v
                pref.append(running)
            local_prefix.append(pref)
            block_sums.append(running if running is not None else _zero_like(values[0]))

    # Tree-combine block sums: leaders at each level gather k child sums.
    # We orchestrate the tree over component ids 0..p-1 (component j at level
    # l is a leader iff j % k**l == 0).
    level = 1
    carry = list(block_sums)  # carry[j] = sum of the k**(level-1)-block group led by j
    group = 1
    while group < p:
        with machine.superstep() as ss:
            for leader in range(0, p, group * k):
                for child_idx in range(1, k):
                    child = leader + child_idx * group
                    if child < p:
                        ss.send(child, leader, ("sum", child, carry[child]))
        for leader in range(0, p, group * k):
            total = carry[leader]
            for _, payload in machine.inbox(leader):
                total = total + payload[2]
            carry[leader] = total
        group *= k
        level += 1

    # Downsweep: leaders send exclusive offsets to children, level by level
    # (top-down over the same group sizes the upsweep used).
    offsets = [None] * p
    offsets[0] = _zero_like(values[0])
    levels = []
    g_size = 1
    while g_size < p:
        levels.append(g_size)
        g_size *= k
    for g_size in reversed(levels):
        with machine.superstep() as ss:
            for leader in range(0, p, g_size * k):
                if offsets[leader] is None:
                    continue
                running = offsets[leader]
                for child_idx in range(k):
                    child = leader + child_idx * g_size
                    if child >= p:
                        break
                    if child != leader:
                        ss.send(leader, child, ("offset", running))
                    # Child's group contribution: sum of blocks in its subgroup.
                    sub = _group_sum(block_sums, child, g_size, p)
                    running = running + sub
        for comp in range(p):
            for _, payload in machine.inbox(comp):
                if payload[0] == "offset":
                    offsets[comp] = payload[1]

    # Final local add.
    out: List[Any] = []
    with machine.superstep() as ss:
        for i in range(p):
            ss.local(i, max(1, len(local_prefix[i])))
            off = offsets[i] if offsets[i] is not None else _zero_like(values[0])
            for v in local_prefix[i]:
                out.append(off + v)
    return meter.result(out, fan_in=k)


def _group_sum(block_sums: List[Any], start: int, width: int, p: int) -> Any:
    total = None
    for j in range(start, min(start + width, p)):
        total = block_sums[j] if total is None else total + block_sums[j]
    if total is None:
        raise AssertionError("empty group in BSP scan")  # pragma: no cover
    return total
