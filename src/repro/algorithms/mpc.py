"""MPC-native algorithms: s-ary aggregation and distributed pointer jumping.

The MPC machine (:mod:`repro.models.mpc`) is a BSP subclass, so every
``*_bsp`` algorithm in this package already runs on it — but with the BSP
fan-in ``L/g``, which is the wrong tuning knob: MPC rounds cost
``max(1, h/s)``, so the free quantity per round is ``s`` *words per
machine*, not ``L/g`` messages.  The implementations here re-tune the trees
to :func:`repro.algorithms.common.mpc_fanin` (``max(2, s)``):

* :func:`parity_mpc`, :func:`or_mpc` — local reduce then an ``s``-ary
  reduction tree: ``O(log_s p)`` rounds, each at the unit charge because a
  leader receives at most ``s - 1`` words.  With ``s = n^epsilon`` this is
  the classic ``O(1/epsilon)``-round MPC aggregation.
* :func:`list_rank_mpc` — distributed pointer jumping.  Nodes are
  block-distributed; each jump is a query round (every active node asks the
  owner of its successor) plus a reply round, so ``ceil(log2 n)`` jumps cost
  ``O(log n)`` rounds at ``h ≈ n/p`` per round.  This is the baseline the
  Charikar–Ma–Tan conditional lower bound (``Ω(log n)`` rounds unless the
  1-vs-2-cycles conjecture fails, see ``repro.lowerbounds.formulas``) says
  one cannot beat by a polynomial factor when ``s = n^epsilon``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algorithms.common import CostMeter, RunResult, mpc_fanin
from repro.models.mpc import MPC

__all__ = ["parity_mpc", "or_mpc", "list_rank_mpc"]


def _check_bits(bits: Sequence[int]) -> List[int]:
    out = []
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"input must be 0/1 bits, got {b!r}")
        out.append(int(b))
    if not out:
        raise ValueError("empty input is undefined here; pass >= 1 bit")
    return out


def _require_mpc(machine) -> None:
    if not isinstance(machine, MPC):
        raise TypeError(f"expected MPC, got {type(machine)!r}")


def parity_mpc(machine: MPC, bits: Sequence[int]) -> RunResult:
    """MPC parity: local XOR then an s-ary reduction to machine 0.

    ``ceil(log_s p)`` combine rounds after the local round; every round's
    ``h`` is at most ``max(n/p, s - 1)``, so for ``n <= p * s`` each round
    is charged the unit floor and the measured cost is the round count.
    """
    _require_mpc(machine)
    values = _check_bits(bits)
    meter = CostMeter(machine)
    p = machine.p
    machine.scatter(values, key="parity_in")
    k = mpc_fanin(machine)

    partial: List[int] = []
    with machine.superstep() as ss:
        for i in range(p):
            block = machine.store[i]["parity_in"]
            ss.local(i, max(1, len(block)))
            par = 0
            for v in block:
                par ^= int(v)
            partial.append(par)

    group = 1
    while group < p:
        with machine.superstep() as ss:
            for leader in range(0, p, group * k):
                for child_idx in range(1, k):
                    child = leader + child_idx * group
                    if child < p:
                        ss.send(child, leader, partial[child])
        for leader in range(0, p, group * k):
            acc = partial[leader]
            for _, payload in machine.inbox(leader):
                acc ^= int(payload)
            partial[leader] = acc
        group *= k

    return meter.result(partial[0], fan_in=k)


def or_mpc(machine: MPC, bits: Sequence[int]) -> RunResult:
    """MPC OR: local OR then an s-ary reduction to machine 0.

    Same round structure as :func:`parity_mpc`; only machines holding a 1
    send, so ``h`` per combine round is at most ``k - 1 <= s``.
    """
    _require_mpc(machine)
    values = _check_bits(bits)
    meter = CostMeter(machine)
    p = machine.p
    machine.scatter(values, key="or_in")
    k = mpc_fanin(machine)

    partial: List[int] = []
    with machine.superstep() as ss:
        for i in range(p):
            block = machine.store[i]["or_in"]
            ss.local(i, max(1, len(block)))
            partial.append(1 if any(v == 1 for v in block) else 0)

    group = 1
    while group < p:
        with machine.superstep() as ss:
            sent = False
            for leader in range(0, p, group * k):
                for child_idx in range(1, k):
                    child = leader + child_idx * group
                    if child < p and partial[child] == 1:
                        ss.send(child, leader, 1)
                        sent = True
            if not sent:
                ss.local(0, 1)
        for leader in range(0, p, group * k):
            if machine.inbox(leader):
                partial[leader] = 1
        group *= k

    return meter.result(partial[0], fan_in=k)


def list_rank_mpc(
    machine: MPC,
    next_ptrs: Sequence[Optional[int]],
    weights: Optional[Sequence[float]] = None,
) -> RunResult:
    """Weighted distance-to-tail by distributed pointer jumping.

    Delegates to :func:`repro.algorithms.list_ranking.list_rank_bsp` (the
    superstep structure is identical) but insists on an MPC machine: here
    the two rounds per jump are charged ``max(1, h/s)`` each, so with
    ``s >= n/p`` the measured cost is ``Theta(log n)`` rounds — the
    baseline the conditional :func:`repro.lowerbounds.formulas.mpc_listrank_rounds`
    bound says cannot be beaten by a polynomial factor.
    """
    from repro.algorithms.list_ranking import list_rank_bsp

    _require_mpc(machine)
    return list_rank_bsp(machine, next_ptrs, weights)
