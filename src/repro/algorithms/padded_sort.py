"""Padded sort of uniform [0,1] values (Section 6.2 problem statement).

**Problem (Padded U[0,1] Sort):** given ``n`` values drawn uniformly from
``[0,1]``, arrange them in sorted order in an array of size ``n + o(n)``
with NULL (``None``) in the unfilled cells.

Implementation: value-range bucketing with per-bucket padding.

1. Split ``[0,1]`` into ``B = ceil(n / b)`` equal sub-intervals
   (``b = ceil(log2^2 n)`` expected items per bucket) and give bucket ``j``
   a region of ``b + slack`` output cells, ``slack = ceil(4 * sqrt(b ln n))``,
   so the total size is ``n + O(n / sqrt(b) * sqrt(ln n)) = n + o(n)`` and
   each bucket overflows only with polynomially small probability.
2. Every value's processor computes its bucket locally and darts into the
   bucket's staging region (collisions retried, as in
   :func:`repro.algorithms.compaction.lac_dart`).
3. One processor per bucket reads its region (``m_rw = O(b)``), sorts
   locally, and writes the values back in order, left-justified, NULLs after.

If any bucket receives more than its region holds (probability ``o(1)``;
adversarial non-uniform inputs can force it) the run *restarts* with doubled
slack; ``extra['restarts']`` counts these, and the verifier checks both the
ordering contract and the ``n + o(n)`` size.
"""

from __future__ import annotations

import math
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM
from repro.util.seeding import RngLike, derive_rng

__all__ = ["padded_sort"]

SharedMachine = Union[QSM, SQSM, GSM]


def padded_sort(
    machine: SharedMachine,
    values: Sequence[float],
    seed: RngLike = None,
    bucket_expected: Optional[int] = None,
    alloc: Optional[Allocator] = None,
    max_restarts: int = 8,
) -> RunResult:
    """Sort uniform [0,1] ``values`` into an ``n + o(n)`` padded array."""
    n = len(values)
    for v in values:
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"padded sort expects values in [0,1], got {v}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    if n == 0:
        return meter.result([], restarts=0, output_size=0)
    rng = derive_rng(seed)

    log_n = max(2.0, math.log2(n))
    b = bucket_expected if bucket_expected is not None else max(4, int(math.ceil(log_n**2)))
    B = -(-n // b)

    restarts = 0
    slack = max(2, int(math.ceil(4.0 * math.sqrt(b * max(1.0, math.log(n))))))
    while True:
        region = b + slack
        ok, out = _attempt(machine, values, alloc, rng, B, region)
        if ok:
            return meter.result(
                out,
                restarts=restarts,
                output_size=len(out),
                buckets=B,
                region=region,
            )
        restarts += 1
        if restarts > max_restarts:
            raise RuntimeError(
                f"padded_sort exceeded {max_restarts} restarts; input is far "
                f"from uniform (bucket overflow persists)"
            )
        slack *= 2


def _attempt(
    machine: SharedMachine,
    values: Sequence[float],
    alloc: Allocator,
    rng,
    B: int,
    region: int,
) -> Tuple[bool, Optional[List[Any]]]:
    """One bucketing attempt; False when some bucket overflows its region."""
    n = len(values)
    buckets: List[List[float]] = [[] for _ in range(B)]
    for v in values:
        j = min(B - 1, int(v * B))
        buckets[j].append(v)
    if any(len(bk) > region for bk in buckets):
        # Overflow is detectable in-model: the bucket leader sees more darts
        # than cells.  We charge the darting phases that discover it.
        _dart_phase_cost_only(machine, values, alloc, rng, B, region)
        return False, None

    staging = alloc.alloc(B * region)
    # Dart each value into its bucket region until every value is placed.
    # Probe-write-verify protocol (no processor uses knowledge it does not
    # have in-model):
    #   A. probe: read the chosen random slot,
    #   B. claim: write own tag iff the probe found the slot empty,
    #   C. verify: read back; the surviving tag owns the slot,
    #   D. deposit: the owner writes its payload (making the slot non-empty
    #      for all later probes).
    live: List[Tuple[int, float]] = list(enumerate(values))
    guard = 0
    while live:
        probes = []
        with machine.phase() as ph:
            for vid, v in live:
                j = min(B - 1, int(v * B))
                slot = staging + j * region + int(rng.integers(0, region))
                probes.append((vid, v, slot, ph.read(vid, slot)))
        claimers = []
        with machine.phase() as ph:
            for vid, v, slot, probe in probes:
                if probe.value is None:
                    ph.write(vid, slot, vid)
                    claimers.append((vid, v, slot))
        handles = []
        with machine.phase() as ph:
            for vid, v, slot in claimers:
                handles.append((vid, v, slot, ph.read(vid, slot)))
        blocked = {(vid, v) for vid, v, slot, probe in probes if probe.value is not None}
        next_live = [pair for pair in blocked]
        winners = []
        for vid, v, slot, handle in handles:
            got = handle.value
            if isinstance(machine, GSM) and isinstance(got, tuple):
                ints = [x for x in got if isinstance(x, int)]
                got = min(ints) if ints else None
            if got == vid:
                winners.append((vid, v, slot))
            else:
                next_live.append((vid, v))
        if winners:
            with machine.phase() as ph:
                for vid, v, slot in winners:
                    ph.write(vid, slot, v)
        live = sorted(next_live)
        guard += 1
        if guard > 10 * (n + 10):
            raise RuntimeError("padded_sort darting failed to converge")  # pragma: no cover

    # Bucket leaders: read region, sort locally, write back padded.
    out_base = alloc.alloc(B * region)
    handles_by_bucket = []
    with machine.phase() as ph:
        for j in range(B):
            hs = [ph.read(n + j, staging + j * region + t) for t in range(region)]
            handles_by_bucket.append(hs)
    with machine.phase() as ph:
        for j, hs in enumerate(handles_by_bucket):
            got = []
            for hnd in hs:
                v = hnd.value
                if isinstance(machine, GSM) and isinstance(v, tuple):
                    v = next((x for x in v if isinstance(x, float)), None)
                if isinstance(v, float):
                    got.append(v)
            got.sort()
            ph.local(n + j, max(1, region))
            for t, v in enumerate(got):
                ph.write(n + j, out_base + j * region + t, v)

    out: List[Any] = []
    for j in range(B):
        vals = [machine.peek(out_base + j * region + t) for t in range(region)]
        if isinstance(machine, GSM):
            vals = [
                (next((x for x in v if isinstance(x, float)), None) if isinstance(v, tuple) else v)
                for v in vals
            ]
        out.extend(vals)
    return True, out


def _dart_phase_cost_only(
    machine: SharedMachine,
    values: Sequence[float],
    alloc: Allocator,
    rng,
    B: int,
    region: int,
) -> None:
    """Charge one dart phase (the work of discovering an overflow)."""
    staging = alloc.alloc(B * region)
    with machine.phase() as ph:
        for vid, v in enumerate(values):
            j = min(B - 1, int(v * B))
            slot = staging + j * region + int(rng.integers(0, region))
            ph.write(vid, slot, vid)
