"""General sorting — the 'sorting' of Section 3's parity reductions.

The paper's parity lower bounds imply lower bounds for sorting via simple
size-preserving reductions; the complementary upper-bound algorithm on the
BSP is communication-efficient sample sort (in the spirit of Goodrich [11]):

1. one superstep: local sort + pick ``s`` evenly spaced local samples,
2. one superstep: samples to component 0, which sorts them and selects
   ``p - 1`` splitters,
3. ``O(log p / log(L/g))`` supersteps: broadcast splitters,
4. one superstep: route every element to its splitter bucket's owner
   (w.h.p. an ``O(n/p)``-relation for random inputs; measured, not assumed),
5. one superstep: local merge.

A shared-memory counterpart (:func:`sort_shared`) does splitter-bucket
routing through shared memory, with the bucket-count scan done by
:func:`~repro.algorithms.prefix.prefix_sums`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, List, Optional, Sequence, Union

from repro.algorithms.broadcast import broadcast_bsp
from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.algorithms.prefix import prefix_sums
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["sample_sort_bsp", "sort_shared"]

SharedMachine = Union[QSM, SQSM, GSM]


def sample_sort_bsp(
    machine: BSP,
    values: Sequence[Any],
    oversampling: int = 4,
) -> RunResult:
    """BSP sample sort; returns the globally sorted list.

    ``extra['max_bucket']`` reports the largest routed bucket so benches can
    check the h-relation stayed near ``n/p``.
    """
    n = len(values)
    p = machine.p
    meter = CostMeter(machine)
    if n == 0:
        return meter.result([])
    if oversampling < 1:
        raise ValueError(f"oversampling must be >= 1, got {oversampling}")
    machine.scatter(list(values), key="sort_in")

    # Superstep 1: local sort + sample.
    locals_sorted: List[List[Any]] = []
    with machine.superstep() as ss:
        for i in range(p):
            block = sorted(machine.store[i]["sort_in"])
            machine.store[i]["sorted"] = block
            cost = max(1, int(len(block) * max(1, len(block)).bit_length()))
            ss.local(i, cost)
            locals_sorted.append(block)
            s = min(len(block), oversampling)
            if s:
                step = max(1, len(block) // s)
                samples = block[::step][:s]
            else:
                samples = []
            if i != 0:
                ss.send(i, 0, ("samples", samples))
            else:
                machine.store[0].setdefault("all_samples", []).extend(samples)

    # Superstep 2 (at component 0): collect samples, pick splitters.
    all_samples = list(machine.store[0].get("all_samples", []))
    for _, payload in machine.inbox(0):
        all_samples.extend(payload[1])
    all_samples.sort()
    splitters: List[Any] = []
    if all_samples and p > 1:
        step = max(1, len(all_samples) // p)
        splitters = all_samples[step::step][: p - 1]
    with machine.superstep() as ss:
        ss.local(0, max(1, len(all_samples)))

    # Supersteps 3..: broadcast splitters from component 0.
    broadcast_bsp(machine, tuple(splitters))

    # Superstep 4: route elements to bucket owners.
    incoming: List[List[Any]] = [[] for _ in range(p)]
    max_bucket = 0
    with machine.superstep() as ss:
        for i in range(p):
            block = machine.store[i]["sorted"]
            ss.local(i, max(1, len(block)))
            msgs = []
            for v in block:
                owner = bisect_right(splitters, v) if splitters else 0
                if owner == i:
                    incoming[i].append(v)
                else:
                    msgs.append((owner, ("elem", v)))
            ss.send_block(i, msgs)
    for i in range(p):
        for _, payload in machine.inbox(i):
            if payload[0] == "elem":
                incoming[i].append(payload[1])
        max_bucket = max(max_bucket, len(incoming[i]))

    # Superstep 5: local merge.
    out: List[Any] = []
    with machine.superstep() as ss:
        for i in range(p):
            bucket = sorted(incoming[i])
            cost = max(1, int(len(bucket) * max(1, len(bucket)).bit_length()))
            ss.local(i, cost)
            machine.store[i]["sort_out"] = bucket
            out.extend(bucket)
    return meter.result(out, max_bucket=max_bucket, splitters=len(splitters))


def sort_shared(
    machine: SharedMachine,
    values: Sequence[Any],
    p: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Shared-memory sample sort with p (default sqrt(n)) virtual groups.

    Splitter buckets are ranked with a prefix-sums scan and routed through
    shared memory; bucket leaders sort locally.  Returns the sorted list.
    """
    n = len(values)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    if n == 0:
        return meter.result([])
    if p is None:
        p = max(1, int(n**0.5))
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")

    # Stage 0: input into memory; each of p group leaders reads its block.
    base = alloc.alloc(n)
    machine.load(list(values), base=base)
    block = -(-n // p)
    handles = []
    with machine.phase() as ph:
        for i in range(p):
            lo, hi = i * block, min((i + 1) * block, n)
            handles.append(ph.read_block(i, range(base + lo, base + hi)))
    groups: List[List[Any]] = []
    for i, hs in enumerate(handles):
        got = []
        for v in hs.values:
            if isinstance(machine, GSM) and isinstance(v, tuple):
                v = v[0]
            got.append(v)
        got.sort()
        groups.append(got)

    # Stage 1: leader 0 gathers evenly spaced samples (one write per leader,
    # one scan read by leader 0) and picks p-1 splitters.
    sample_base = alloc.alloc(p)
    with machine.phase() as ph:
        for i, grp in enumerate(groups):
            ph.local(i, max(1, len(grp)))
            sample = grp[len(grp) // 2] if grp else None
            ph.write(i, sample_base + i, sample)
    with machine.phase() as ph:
        sample_handles = [ph.read(0, sample_base + i) for i in range(p)]
    samples = []
    for hnd in sample_handles:
        v = hnd.value
        if isinstance(machine, GSM) and isinstance(v, tuple):
            v = v[0]
        if v is not None:
            samples.append(v)
    samples.sort()
    splitters = samples[1:] if len(samples) > 1 else []

    # Stage 2: bucket counts per (group, bucket), scan for destinations.
    counts: List[int] = [0] * (p * p)
    routed: List[List[List[Any]]] = [[[] for _ in range(p)] for _ in range(p)]
    for i, grp in enumerate(groups):
        for v in grp:
            bkt = bisect_right(splitters, v) if splitters else 0
            bkt = min(bkt, p - 1)
            routed[i][bkt].append(v)
            counts[bkt * p + i] += 1
    scan = prefix_sums(machine, counts, fan_in=2, alloc=alloc)
    offsets = [incl - c for incl, c in zip(scan.value, counts)]

    # Stage 3: leaders write their bucketed elements to ranked cells.
    staging = alloc.alloc(n)
    with machine.phase() as ph:
        for i in range(p):
            to_write = []
            for bkt in range(p):
                off = offsets[bkt * p + i]
                for j, v in enumerate(routed[i][bkt]):
                    to_write.append((staging + off + j, v))
            ph.write_block(i, to_write)
            ph.local(i, max(1, len(to_write)))

    # Stage 4: bucket leaders read their ranges and sort locally.
    bucket_lo = [offsets[bkt * p] for bkt in range(p)]
    bucket_hi = bucket_lo[1:] + [n]
    handles2 = []
    with machine.phase() as ph:
        for bkt in range(p):
            handles2.append(
                ph.read_block(
                    bkt, range(staging + bucket_lo[bkt], staging + bucket_hi[bkt])
                )
            )
    out: List[Any] = []
    max_bucket = 0
    for bkt, hs in enumerate(handles2):
        got = []
        for v in hs.values:
            if isinstance(machine, GSM) and isinstance(v, tuple):
                v = v[0]
            got.append(v)
        got.sort()
        max_bucket = max(max_bucket, len(got))
        out.extend(got)
    return meter.result(out, p=p, max_bucket=max_bucket)
