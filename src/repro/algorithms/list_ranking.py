"""List ranking by pointer jumping — a 'related problem' of parity.

**Problem:** a linked list is given as a ``next`` array (``next[i]`` is the
successor of node ``i``, ``None`` at the tail) with optional node weights;
compute for every node the weighted distance to the tail (with unit weights,
the classic rank).

Pointer jumping runs ``ceil(log2 n)`` iterations.  Each iteration, every
unfinished node reads its successor's ``(next, dist)`` cell and composes:
``dist[i] += dist[next[i]]; next[i] = next[next[i]]``.  Successor pointers
stay injective among active nodes (a node whose successor is the tail stops
jumping), so read contention stays 1 — this is the EREW-style algorithm, and
its QSM/s-QSM cost is ``O(g log n)``: exactly the regime the paper's parity
lower bound family addresses, since parity reduces to list ranking
size-preservingly (see :mod:`repro.algorithms.reductions`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["list_rank", "list_rank_bsp"]

SharedMachine = Union[QSM, SQSM, GSM]


def _validate_list(next_ptrs: Sequence[Optional[int]]) -> None:
    n = len(next_ptrs)
    seen = set()
    for i, nxt in enumerate(next_ptrs):
        if nxt is not None:
            if not 0 <= nxt < n:
                raise ValueError(f"next[{i}]={nxt} out of range")
            if nxt in seen:
                raise ValueError(f"node {nxt} has two predecessors; not a list")
            if nxt == i:
                raise ValueError(f"node {i} points to itself")
            seen.add(nxt)


def list_rank(
    machine: SharedMachine,
    next_ptrs: Sequence[Optional[int]],
    weights: Optional[Sequence[float]] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Weighted distance-to-tail for every node of the list.

    ``weights[i]`` is the weight *of node i itself*; the returned rank of
    node ``i`` is the sum of weights of ``i`` and all nodes after it (so the
    head's rank is the total weight).  Unit weights give position-from-tail
    counting from 1.
    """
    n = len(next_ptrs)
    if n == 0:
        return RunResult(value=[], time=0.0, phases=0)
    w = list(weights) if weights is not None else [1] * n
    if len(w) != n:
        raise ValueError(f"weights length {len(w)} != list length {n}")
    _validate_list(next_ptrs)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    # Cell i holds the pair (next, dist): dist = accumulated weight of the
    # covered sublist starting at i (excluding the current target's own tail
    # segment).  Initially dist[i] = weight[i].
    base = alloc.alloc(n)
    state: List[tuple] = [(next_ptrs[i], w[i]) for i in range(n)]
    with machine.phase() as ph:
        for i in range(n):
            ph.write(i, base + i, state[i])

    iterations = 0
    while any(nxt is not None for nxt, _ in state):
        handles = []
        with machine.phase() as ph:
            read_any = False
            for i in range(n):
                nxt, _ = state[i]
                if nxt is not None:
                    handles.append((i, ph.read(i, base + nxt)))
                    read_any = True
            if not read_any:  # pragma: no cover - loop guard makes this unreachable
                break
        updates = {}
        for i, handle in handles:
            got = handle.value
            if isinstance(machine, GSM) and isinstance(got, tuple) and got and isinstance(got[0], tuple):
                got = got[-1]  # strong queuing: latest write is last
            nxt_i, dist_i = state[i]
            nxt_j, dist_j = got
            updates[i] = (nxt_j, dist_i + dist_j)
        with machine.phase() as ph:
            for i, new_state in updates.items():
                ph.write(i, base + i, new_state)
                state[i] = new_state
        iterations += 1
        if iterations > 2 * n + 4:
            raise RuntimeError("pointer jumping failed to converge; cyclic input?")

    ranks = [dist for _, dist in state]
    return meter.result(ranks, iterations=iterations)


def list_rank_bsp(
    machine: BSP,
    next_ptrs: Sequence[Optional[int]],
    weights: Optional[Sequence[float]] = None,
) -> RunResult:
    """Distributed pointer jumping on the BSP (and its MPC subclass).

    Node ``i`` lives on component ``i // ceil(n/p)``.  Each jump iteration
    is two supersteps: every unfinished node sends a query to the component
    owning its successor, which replies with the successor's current
    ``(next, dist)`` pair; the node then composes exactly as the shared-
    memory :func:`list_rank` does.  The per-superstep ``h`` stays at the
    block size ``ceil(n/p)`` (successor pointers are injective among active
    nodes), so the total is ``ceil(log2 n)`` iterations of two h-relations
    — ``O((L + g n/p) log n)`` BSP time, and ``Theta(log n)`` rounds on an
    MPC with ``s >= n/p`` (see :func:`repro.algorithms.mpc.list_rank_mpc`).
    """
    if not isinstance(machine, BSP):
        raise TypeError(f"expected BSP, got {type(machine)!r}")
    n = len(next_ptrs)
    if n == 0:
        return RunResult(value=[], time=0.0, phases=0)
    w = list(weights) if weights is not None else [1] * n
    if len(w) != n:
        raise ValueError(f"weights length {len(w)} != list length {n}")
    _validate_list(next_ptrs)
    meter = CostMeter(machine)
    p = machine.p
    block = -(-n // p)

    def owner(node: int) -> int:
        return node // block

    # Superstep 0: distribute the (next, dist) state; dist[i] starts at w[i].
    machine.scatter([(next_ptrs[i], w[i]) for i in range(n)], key="lr_state")
    state: List[tuple] = [(next_ptrs[i], w[i]) for i in range(n)]
    with machine.superstep() as ss:
        for m in range(p):
            ss.local(m, max(1, len(machine.store[m]["lr_state"])))

    iterations = 0
    while any(nxt is not None for nxt, _ in state):
        # Query superstep: node i asks owner(next[i]) for next[i]'s state.
        with machine.superstep() as ss:
            for i in range(n):
                nxt, _ = state[i]
                if nxt is not None:
                    ss.send(owner(i), owner(nxt), ("q", i, nxt))
        queries = []
        for m in range(p):
            for _, payload in machine.inbox(m):
                queries.append(payload)
        # Reply superstep: the owner ships (next, dist) of the queried node
        # back — read from the pre-update state, so the composition below
        # is the synchronous jump the shared-memory algorithm performs.
        with machine.superstep() as ss:
            replied = False
            for _, asker, node in queries:
                ss.send(owner(node), owner(asker), ("r", asker, state[node]))
                replied = True
            if not replied:  # pragma: no cover - loop guard makes this unreachable
                ss.local(0, 1)
        updates = {}
        for m in range(p):
            for _, payload in machine.inbox(m):
                _, asker, (nxt_j, dist_j) = payload
                nxt_i, dist_i = state[asker]
                updates[asker] = (nxt_j, dist_i + dist_j)
        state_changed = False
        for i, new_state in updates.items():
            state[i] = new_state
            state_changed = True
        iterations += 1
        if not state_changed or iterations > 2 * n + 4:
            raise RuntimeError("pointer jumping failed to converge; cyclic input?")

    ranks = [dist for _, dist in state]
    return meter.result(ranks, iterations=iterations, block=block)
