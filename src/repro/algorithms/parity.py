"""Parity algorithms (Section 8, first paragraph).

Four implementations, matching the paper's claims:

* :func:`parity_tree` — plain k-ary read-combining tree.  With the default
  fan-in 2 this is the straightforward ``O(g log n)`` algorithm that is
  *tight* on the s-QSM (Theta(g log n), Table 1b).  On the GSM fan-in
  ``alpha`` packs each phase into one big-step.
* :func:`parity_blocks` — emulation of the depth-2 unbounded fan-in parity
  circuit, the ``O(g log n / log log g)`` QSM algorithm.  Each level splits
  the input into blocks of ``b`` bits and evaluates every block's parity in
  O(1) phases of cost O(g) using per-pattern mismatch detection:

  - one processor per (block, pattern, position) reads its input bit
    (per-bit read contention ``2^b``, so ``b = floor(log2 g)`` keeps the
    contention charge at ``g``),
  - mismatching processors write a flag to their pattern cell (write
    contention <= b),
  - one processor per pattern reads the flag cell; the unique pattern with
    no mismatch knows the block's bits and writes their parity.

  With unit-time concurrent reads (``QSMParams.unit_time_concurrent_reads``)
  the read contention is free and the block size grows to ``b = g``, giving
  the ``O(g log n / log g)`` variant that matches Theorem 3.1's bound for
  QSM-with-concurrent-reads *exactly* (the Theta entry of Table 1a).
* :func:`parity_bsp` — local XOR then an (L/g)-ary reduction tree:
  ``O(g n/p + L log p / log(L/g))``.
* :func:`parity_rounds` — p-processor rounds version (local blocks of n/p,
  then an (n/p)-ary tree): ``O(log n / log(n/p))`` rounds, the upper bound
  quoted under Table 1d.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, bsp_fanin, fresh_allocator
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["parity_tree", "parity_blocks", "parity_bsp", "parity_rounds"]

SharedMachine = Union[QSM, SQSM, GSM]


def _check_bits(bits: Sequence[int]) -> List[int]:
    out = []
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"parity input must be 0/1 bits, got {b!r}")
        out.append(int(b))
    if not out:
        raise ValueError("parity of an empty input is undefined here; pass >= 1 bit")
    return out


def _unwrap(machine: SharedMachine, value):
    if isinstance(machine, GSM) and isinstance(value, tuple):
        return value[0]
    return value


def _default_fanin(machine: SharedMachine, fan_in: Optional[int]) -> int:
    if fan_in is not None:
        if fan_in < 2:
            raise ValueError(f"fan-in must be >= 2, got {fan_in}")
        return fan_in
    if isinstance(machine, GSM):
        return max(2, int(machine.params.alpha))
    from repro.models.pem import PEM

    if isinstance(machine, PEM):
        # B reads are one block I/O: B-ary trees cost one I/O per level.
        return max(2, int(machine.params.B))
    return 2


def parity_tree(
    machine: SharedMachine,
    bits: Sequence[int],
    fan_in: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """k-ary read-combining parity tree.

    Each level: one read phase where a leader per group reads its k children
    (``m_rw = k``, contention 1) and one write phase for the group parities.
    Cost ``O(g k log_k n)`` on QSM/s-QSM; ``O(mu * log_alpha n)`` on the GSM
    with the default fan-in alpha.
    """
    values = _check_bits(bits)
    k = _default_fanin(machine, fan_in)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    base = alloc.alloc(len(values))
    machine.load(values, base=base)
    size = len(values)
    proc = 0
    levels = 0
    while size > 1:
        groups = -(-size // k)
        nxt = alloc.alloc(groups)
        handles = []
        with machine.phase() as ph:
            for j in range(groups):
                handles.append(
                    ph.read_block(
                        proc + j,
                        range(base + j * k, base + min((j + 1) * k, size)),
                    )
                )
        new_vals = []
        with machine.phase() as ph:
            for j, hs in enumerate(handles):
                got = [_unwrap(machine, v) for v in hs.values]
                par = 0
                for v in got:
                    par ^= int(v)
                ph.local(proc + j, len(got))
                ph.write(proc + j, nxt + j, par)
                new_vals.append(par)
        proc += groups
        base, size = nxt, groups
        levels += 1

    answer = int(_unwrap(machine, machine.peek(base)))
    return meter.result(answer, fan_in=k, levels=levels)


# The pattern-matching emulation spawns 2^b processors per block; the paper's
# QSM has unlimited processors but the simulator has finite memory, so default
# block widths are capped here.  Benchmarks sweeping the concurrent-reads
# variant keep g at or below 2^MAX_BLOCK_BITS (documented in EXPERIMENTS.md).
MAX_BLOCK_BITS = 10


def _block_size(machine: SharedMachine) -> int:
    """Block width for :func:`parity_blocks`, per the model's contention charge."""
    if isinstance(machine, QSM) and not isinstance(machine, SQSM):
        g = int(machine.params.g)
        if machine.params.unit_time_concurrent_reads:
            # Reads are free; write contention <= b caps the block at b = g.
            return min(max(2, g), MAX_BLOCK_BITS)
        # Read contention 2^b is charged raw: keep 2^b <= g.
        return min(max(2, g.bit_length() - 1), MAX_BLOCK_BITS)
    # s-QSM / GSM: contention is expensive; the block method degenerates, use 2.
    return 2


def parity_blocks(
    machine: QSM,
    bits: Sequence[int],
    block_size: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Depth-2 circuit emulation: parity via per-block pattern matching.

    Intended for the QSM (where contention is charged raw); see the module
    docstring for the phase structure.  The per-level cost is
    ``O(max(g, 2^b, b))`` and the level count ``ceil(log n / log b)``, so

    * plain QSM, ``b = log g``: ``O(g log n / log log g)`` total,
    * unit-time concurrent reads, ``b = g``: ``O(g log n / log g)`` total.
    """
    if not isinstance(machine, QSM) or isinstance(machine, SQSM):
        raise TypeError("parity_blocks targets the QSM; use parity_tree elsewhere")
    values = _check_bits(bits)
    b = block_size if block_size is not None else _block_size(machine)
    if b < 2:
        raise ValueError(f"block size must be >= 2, got {b}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    base = alloc.alloc(len(values))
    machine.load(values, base=base)
    size = len(values)
    proc = 0
    levels = 0

    while size > 1:
        groups = -(-size // b)
        out_base = alloc.alloc(groups)
        flag_base = alloc.alloc(groups << b)  # mismatch flags, one per (block, pattern)

        # Phase A: reader (block j, pattern q, position i) reads bit j*b+i.
        read_handles = {}
        with machine.phase() as ph:
            for j in range(groups):
                width = min(b, size - j * b)
                for q in range(1 << width):
                    for i in range(width):
                        pid = proc
                        proc += 1
                        read_handles[(j, q, i)] = ph.read(pid, base + j * b + i)

        # Phase B: mismatching readers flag their pattern cell.
        # Each mismatching reader (same processor id as in Phase A) flags its
        # pattern cell.
        with machine.phase() as ph:
            for (j, q, i), handle in read_handles.items():
                bit = int(handle.value)
                want = (q >> i) & 1
                if bit != want:
                    ph.write(_reader_pid(j, q, i, read_handles), flag_base + (j << b) + q, 1)

        # Phase C: one checker per (block, pattern) reads the flag cell.
        checker_handles = {}
        with machine.phase() as ph:
            for j in range(groups):
                width = min(b, size - j * b)
                for q in range(1 << width):
                    pid = proc
                    proc += 1
                    checker_handles[(j, q)] = (pid, ph.read(pid, flag_base + (j << b) + q))

        # Phase D: the unique unflagged pattern per block writes its parity.
        new_vals = [0] * groups
        with machine.phase() as ph:
            for (j, q), (pid, handle) in checker_handles.items():
                if handle.value is None:  # no mismatch: q is the block's contents
                    par = bin(q).count("1") & 1
                    ph.local(pid, 1)
                    ph.write(pid, out_base + j, par)
                    new_vals[j] = par

        base, size = out_base, groups
        levels += 1

    answer = int(machine.peek(base) or 0)
    return meter.result(answer, block_size=b, levels=levels)


def _reader_pid(j: int, q: int, i: int, handles) -> int:
    """Processor id that performed read (j, q, i) — recover it from the handle."""
    return handles[(j, q, i)].proc


def parity_bsp(machine: BSP, bits: Sequence[int]) -> RunResult:
    """BSP parity: local XOR then (L/g)-ary reduction to component 0.

    Cost ``O(n/p)`` local work in the first superstep plus
    ``ceil(log p / log(L/g + 1))`` combine supersteps of cost ``L`` each.
    """
    values = _check_bits(bits)
    meter = CostMeter(machine)
    p = machine.p
    machine.scatter(values, key="parity_in")
    k = bsp_fanin(machine)

    partial: List[int] = []
    with machine.superstep() as ss:
        for i in range(p):
            block = machine.store[i]["parity_in"]
            ss.local(i, max(1, len(block)))
            par = 0
            for v in block:
                par ^= int(v)
            partial.append(par)

    group = 1
    while group < p:
        with machine.superstep() as ss:
            for leader in range(0, p, group * k):
                for child_idx in range(1, k):
                    child = leader + child_idx * group
                    if child < p:
                        ss.send(child, leader, partial[child])
        for leader in range(0, p, group * k):
            acc = partial[leader]
            for _, payload in machine.inbox(leader):
                acc ^= int(payload)
            partial[leader] = acc
        group *= k

    return meter.result(partial[0], fan_in=k)


def parity_rounds(
    machine: SharedMachine,
    bits: Sequence[int],
    p: int,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """p-processor parity that computes in rounds.

    One round of local XOR over blocks of ``ceil(n/p)`` bits, then an
    ``(n/p)``-ary :func:`parity_tree` over the p partial parities — every
    phase fits the ``O(g n/p)`` round budget, and the round count is
    ``O(1 + log p / log(n/p)) = O(log n / log(n/p))``.
    """
    values = _check_bits(bits)
    n = len(values)
    if p < 1 or p > n:
        raise ValueError(f"need 1 <= p <= n, got p={p}, n={n}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    block = -(-n // p)
    base = alloc.alloc(n)
    machine.load(values, base=base)

    handles = []
    with machine.phase() as ph:
        for i in range(p):
            lo, hi = i * block, min((i + 1) * block, n)
            handles.append(ph.read_block(i, range(base + lo, base + hi)))
    partials = []
    for hs in handles:
        par = 0
        for v in hs.values:
            par ^= int(_unwrap(machine, v))
        partials.append(par)

    if len(partials) == 1:
        return meter.result(partials[0], p=p, block=block)
    inner = parity_tree(machine, partials, fan_in=max(2, block), alloc=alloc)
    return meter.result(inner.value, p=p, block=block, fan_in=max(2, block))
