"""OR algorithms (Section 8, last paragraph).

* :func:`or_tree_writes` — deterministic write-tournament tree.  Only the
  processors holding a 1 write to their group's parent cell, so a phase has
  ``m_rw = 1`` and contention at most the fan-in ``k``; on the QSM the phase
  costs ``max(g, k)``, so fan-in ``k = g`` gives the paper's
  ``O((g / log g) log n)``.  On the s-QSM contention costs ``g`` per unit, so
  the default fan-in is 2 and the bound ``O(g log n)``.
* :func:`or_sparse_random` — randomized OR with unit-time concurrent reads,
  a simplified adaptation of the QRQW algorithm of [9] the paper cites for
  ``O(g log n / log log n)`` w.h.p.  Fan-in ``max(g, ceil(log n / log log n))``
  write tournaments whose contention is kept near ``O(log n/ log log n)``
  w.h.p. by having each 1-holder first dart into a random slot of its
  group's slot array (deduplicating heavy groups before the tournament
  write).
* :func:`or_bsp` — local OR + (L/g)-ary reduction: ``O(g n/p + L log p /
  log(L/g))``, matching the ``O(L log n / log(L/g))`` claim (from [12]) at
  ``p = n``.
* :func:`or_rounds` — p-processor rounds version.  On the QSM the tournament
  fan-in can be ``g * n / p`` (contention is the round budget ``g n/p``), so
  the round count is ``O(log n / log(gn/p))`` — the *tight* QSM rounds bound
  of Table 1d; on the s-QSM fan-in ``n/p`` gives the tight
  ``O(log n / log(n/p))``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, bsp_fanin, fresh_allocator
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM
from repro.util.seeding import RngLike, derive_rng

__all__ = ["or_tree_writes", "or_sparse_random", "or_bsp", "or_rounds"]

SharedMachine = Union[QSM, SQSM, GSM]


def _check_bits(bits: Sequence[int]) -> List[int]:
    out = []
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"OR input must be 0/1 bits, got {b!r}")
        out.append(int(b))
    if not out:
        raise ValueError("OR of an empty input is undefined here; pass >= 1 bit")
    return out


def _default_or_fanin(machine: SharedMachine, n: int) -> int:
    from repro.core.qsm_gd import QSMGD

    if isinstance(machine, SQSM):
        return 2
    if isinstance(machine, QSMGD):
        # Contention costs d per unit: cost max(g, d*k) is flat to k = g/d.
        return max(2, int(machine.params.g / machine.params.d))
    if isinstance(machine, QSM):
        return max(2, int(machine.params.g))
    if isinstance(machine, GSM):
        # beta units of contention fit in a big-step.
        return max(2, int(machine.params.beta))
    from repro.models.pem import PEM

    if isinstance(machine, PEM):
        # Contention serializes at the block level (cost max(1, kappa)),
        # so write tournaments keep the binary fan-in; the block win is
        # on the read side (see parity's B-ary trees).
        return 2
    raise TypeError(f"unsupported machine: {type(machine)!r}")


def or_tree_writes(
    machine: SharedMachine,
    bits: Sequence[int],
    fan_in: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Deterministic write-tournament OR.

    Level structure: live values sit in an array; each position holding a 1
    writes a 1 to its parent cell (write phase, contention <= k), then one
    processor per parent reads its cell (read phase, contention 1) to learn
    the next level's value.  ``ceil(log_k n)`` levels.
    """
    values = _check_bits(bits)
    n = len(values)
    k = fan_in if fan_in is not None else _default_or_fanin(machine, n)
    if k < 2:
        raise ValueError(f"fan-in must be >= 2, got {k}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    # The input is in memory per the model; each level value is owned by a
    # specific processor: position i's bit by processor i ab initio, and a
    # tournament cell's value by the processor that read it.  Writers at
    # every level are the owners, so information flows only through reads —
    # the discipline the influence-cone tracker and the adversaries rely on.
    base = alloc.alloc(n)
    machine.load(values, base=base)
    current = values
    owners = list(range(n))
    proc = n
    levels = 0
    while len(current) > 1:
        groups = -(-len(current) // k)
        nxt = alloc.alloc(groups)
        # An all-zero level leaves the phase empty; the model defines an
        # empty phase to have contention 1 and it is still charged.
        with machine.phase() as ph:
            for i, v in enumerate(current):
                if v == 1:
                    ph.write(owners[i], nxt + i // k, 1)
        handles = []
        with machine.phase() as ph:
            for j in range(groups):
                handles.append(ph.read(proc + j, nxt + j))
        new_vals = []
        new_owners = []
        for j, h in enumerate(handles):
            got = h.value
            if isinstance(machine, GSM) and isinstance(got, tuple):
                got = 1 if any(x == 1 for x in got) else 0
            new_vals.append(1 if got == 1 else 0)
            new_owners.append(h.proc)
        proc += groups
        current = new_vals
        owners = new_owners
        levels += 1

    return meter.result(current[0], fan_in=k, levels=levels)


def or_sparse_random(
    machine: QSM,
    bits: Sequence[int],
    seed: RngLike = None,
    fan_in: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Randomized OR for the QSM with unit-time concurrent reads.

    Simplified adaptation of the QRQW OR of [9]: the tournament fan-in grows
    to ``k = max(g, ceil(log n / log log n))``, and before the tournament
    write each 1-holder darts into a random slot of its group's ``s``-slot
    scratch array (``s = ceil(k / log n)``), so the *expected* contention at
    the parent cell is ``O(s + log n)`` rather than ``k``.  The simulated
    cost is measured, not assumed: the dart phases' actual contention shows
    up in ``machine.time``.

    Requires ``machine.params.unit_time_concurrent_reads`` (the paper's
    claim is for that variant); raises otherwise.
    """
    if not isinstance(machine, QSM) or isinstance(machine, SQSM):
        raise TypeError("or_sparse_random targets the QSM")
    if not machine.params.unit_time_concurrent_reads:
        raise ValueError(
            "or_sparse_random models the concurrent-read variant; construct the "
            "QSM with QSMParams(unit_time_concurrent_reads=True)"
        )
    values = _check_bits(bits)
    n = len(values)
    rng = derive_rng(seed)
    loglog = max(1.0, math.log2(max(2.0, math.log2(max(2, n)))))
    k = fan_in if fan_in is not None else max(
        2, int(machine.params.g), int(math.ceil(math.log2(max(2, n)) / loglog))
    )
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    base = alloc.alloc(n)
    machine.load(values, base=base)
    current = values
    proc = 0
    levels = 0
    while len(current) > 1:
        groups = -(-len(current) // k)
        slots_per_group = max(1, int(math.ceil(k / max(1.0, math.log2(max(2, n))))))
        slot_base = alloc.alloc(groups * slots_per_group)
        nxt = alloc.alloc(groups)

        # Dart phase: each 1-holder writes into a random slot of its group.
        with machine.phase() as ph:
            for i, v in enumerate(current):
                if v == 1:
                    slot = int(rng.integers(0, slots_per_group))
                    ph.write(proc + i, slot_base + (i // k) * slots_per_group + slot, 1)
        proc += len(current)

        # Slot scan: one processor per occupied-slot candidate reads its slot
        # (concurrent reads are unit-time, so this is cheap) and tournament-
        # writes to the parent; contention at the parent is the number of
        # *occupied slots*, at most slots_per_group.
        handles = []
        with machine.phase() as ph:
            for j in range(groups):
                for s in range(slots_per_group):
                    handles.append((j, ph.read(proc, slot_base + j * slots_per_group + s)))
                    proc += 1
        with machine.phase() as ph:
            for j, h in handles:
                if h.value == 1:
                    ph.write(h.proc, nxt + j, 1)

        read_handles = []
        with machine.phase() as ph:
            for j in range(groups):
                read_handles.append(ph.read(proc + j, nxt + j))
        current = [1 if h.value == 1 else 0 for h in read_handles]
        proc += groups
        levels += 1

    return meter.result(current[0], fan_in=k, levels=levels)


def or_bsp(machine: BSP, bits: Sequence[int]) -> RunResult:
    """BSP OR: local OR then (L/g)-ary reduction to component 0."""
    values = _check_bits(bits)
    meter = CostMeter(machine)
    p = machine.p
    machine.scatter(values, key="or_in")
    k = bsp_fanin(machine)

    partial: List[int] = []
    with machine.superstep() as ss:
        for i in range(p):
            block = machine.store[i]["or_in"]
            ss.local(i, max(1, len(block)))
            partial.append(1 if any(v == 1 for v in block) else 0)

    group = 1
    while group < p:
        with machine.superstep() as ss:
            sent = False
            for leader in range(0, p, group * k):
                for child_idx in range(1, k):
                    child = leader + child_idx * group
                    if child < p and partial[child] == 1:
                        ss.send(child, leader, 1)
                        sent = True
            if not sent:
                ss.local(0, 1)
        for leader in range(0, p, group * k):
            if machine.inbox(leader):
                partial[leader] = 1
        group *= k

    return meter.result(partial[0], fan_in=k)


def or_rounds(
    machine: SharedMachine,
    bits: Sequence[int],
    p: int,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """p-processor OR in rounds.

    One round of local OR over blocks of ``n/p``, then a write tournament
    whose fan-in uses the whole round budget: ``g * n / p`` on the QSM
    (contention is charged raw, budget ``g n / p``), ``n/p`` on the s-QSM
    and GSM.  Round counts match the Theta entries of Table 1d.
    """
    values = _check_bits(bits)
    n = len(values)
    if p < 1 or p > n:
        raise ValueError(f"need 1 <= p <= n, got p={p}, n={n}")
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    block = -(-n // p)
    base = alloc.alloc(n)
    machine.load(values, base=base)

    handles = []
    with machine.phase() as ph:
        for i in range(p):
            lo, hi = i * block, min((i + 1) * block, n)
            handles.append(ph.read_block(i, range(base + lo, base + hi)))
    partials = []
    for hs in handles:
        vals = []
        for got in hs.values:
            if isinstance(machine, GSM) and isinstance(got, tuple):
                got = got[0]
            vals.append(int(got))
        partials.append(1 if any(v == 1 for v in vals) else 0)

    if isinstance(machine, QSM) and not isinstance(machine, SQSM):
        fan = max(2, int(machine.params.g * n / p))
    else:
        fan = max(2, block)
    if len(partials) == 1:
        return meter.result(partials[0], p=p, fan_in=fan)
    inner = or_tree_writes(machine, partials, fan_in=fan, alloc=alloc)
    return meter.result(inner.value, p=p, fan_in=fan)
