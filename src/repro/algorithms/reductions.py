"""Size-preserving reductions from Parity (Section 3, closing remark).

"The lower bounds we have obtained for the Parity problem imply
corresponding lower bounds for other problems such as list ranking and
sorting, since there are simple size-preserving reductions from parity to
these other problems."

This module makes those reductions executable, in the direction the paper
uses them: an n-bit parity instance becomes an n-element list-ranking (or
sorting) instance, the target problem is solved by the corresponding
algorithm on the machine, and the parity answer is decoded with O(1) extra
model cost.  A lower bound for parity therefore transfers to the target
problem, and — run forward — the reductions give alternative parity
algorithms whose measured cost benches the target algorithms.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.algorithms.list_ranking import list_rank
from repro.algorithms.sorting import sample_sort_bsp, sort_shared
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["parity_via_list_ranking", "parity_via_sorting", "parity_via_sorting_bsp"]

SharedMachine = Union[QSM, SQSM, GSM]


def _check_bits(bits: Sequence[int]):
    out = [int(b) for b in bits]
    if any(b not in (0, 1) for b in out):
        raise ValueError("parity input must be 0/1 bits")
    if not out:
        raise ValueError("parity of an empty input is undefined here")
    return out


def parity_via_list_ranking(
    machine: SharedMachine,
    bits: Sequence[int],
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Parity of n bits via an n-node weighted list-ranking instance.

    The instance is the identity list ``0 -> 1 -> ... -> n-1`` with node
    weights equal to the bits; the head's weighted rank is the total number
    of ones, and its low bit is the parity.  Size-preserving: n bits -> n
    nodes.
    """
    values = _check_bits(bits)
    n = len(values)
    meter = CostMeter(machine)
    next_ptrs = [i + 1 for i in range(n - 1)] + [None]
    ranking = list_rank(machine, next_ptrs, weights=values, alloc=alloc)
    total_ones = ranking.value[0]
    return meter.result(int(total_ones) & 1, total_ones=int(total_ones))


def parity_via_sorting(
    machine: SharedMachine,
    bits: Sequence[int],
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Parity via sorting the bit array (shared-memory sample sort).

    After sorting, the number of ones is ``n - (index of first 1)``; the
    decode is a local O(log n) binary search by one processor over the
    sorted array (charged as reads).
    """
    values = _check_bits(bits)
    n = len(values)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    sorted_run = sort_shared(machine, values, alloc=alloc)
    sorted_bits = sorted_run.value

    # Store the sorted array and binary-search it in-model.
    base = alloc.alloc(n)
    with machine.phase() as ph:
        for i, v in enumerate(sorted_bits):
            ph.write(i, base + i, v)
    lo, hi = 0, n  # find the first index holding a 1
    while lo < hi:
        mid = (lo + hi) // 2
        with machine.phase() as ph:
            handle = ph.read(0, base + mid)
        got = handle.value
        if isinstance(machine, GSM) and isinstance(got, tuple):
            got = got[0]
        if got == 1:
            hi = mid
        else:
            lo = mid + 1
    ones = n - lo
    return meter.result(ones & 1, total_ones=ones)


def parity_via_sorting_bsp(machine: BSP, bits: Sequence[int]) -> RunResult:
    """Parity via BSP sample sort plus an O(1)-superstep decode.

    Component 0 learns each component's share of the sorted output
    (one message per component: an (n/p)-relation at worst) and counts ones.
    """
    values = _check_bits(bits)
    meter = CostMeter(machine)
    sorted_run = sample_sort_bsp(machine, values)
    p = machine.p
    with machine.superstep() as ss:
        for i in range(p):
            bucket = machine.store[i].get("sort_out", [])
            ss.local(i, max(1, len(bucket)))
            if i != 0:
                ss.send(i, 0, ("ones", sum(1 for v in bucket if v == 1)))
    ones = sum(1 for v in machine.store[0].get("sort_out", []) if v == 1)
    for _, payload in machine.inbox(0):
        ones += payload[1]
    return meter.result(ones & 1, total_ones=ones)
