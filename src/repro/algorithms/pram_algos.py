"""Reference algorithms for the classical PRAM family.

These close the model ladder the paper sits on: the EREW binary tree is the
Theta(log n) baseline, and the CRCW pattern method is the
Theta(log n / log log n) Beame-Hastad-matching parity algorithm whose
*lower* bound Theorem 3.3 transfers to the QSM.  OR on a COMMON CRCW is the
textbook O(1) step — the separation that motivates charging contention at
all (on the paper's queuing models the same trick costs ``kappa``).

Every processor issues at most one shared-memory access per step, as the
:class:`~repro.core.pram.PRAM` machine enforces.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.algorithms.common import Allocator, CostMeter, RunResult, fresh_allocator
from repro.core.pram import PRAM, ConcurrencyViolation

__all__ = ["or_crcw", "parity_erew", "parity_crcw"]

# The CRCW parity pattern method spawns 2^b processors per block; cap the
# simulated block width (same consideration as parity_blocks on the QSM).
MAX_BLOCK_BITS = 10


def _check_bits(bits: Sequence[int]) -> List[int]:
    out = [int(b) for b in bits]
    if any(b not in (0, 1) for b in out):
        raise ValueError("input must be 0/1 bits")
    if not out:
        raise ValueError("empty input")
    return out


def _require_variant(machine: PRAM, *variants: str) -> None:
    if not isinstance(machine, PRAM):
        raise TypeError(f"expected a PRAM, got {type(machine)!r}")
    if machine.params.variant not in variants:
        raise ValueError(
            f"algorithm needs a {'/'.join(variants)} PRAM, got {machine.params.variant}"
        )


def or_crcw(machine: PRAM, bits: Sequence[int], alloc: Optional[Allocator] = None) -> RunResult:
    """OR in O(1) CRCW steps: every 1-holder writes 1 to the output cell.

    All writers agree on the value, so the COMMON rule suffices (and
    arbitrary/priority trivially work too).  One more step reads the answer
    back.  Total: 2 unit-time steps regardless of n.
    """
    _require_variant(machine, "CRCW")
    values = _check_bits(bits)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)
    out = alloc.alloc(1)
    with machine.phase() as ph:
        for i, v in enumerate(values):
            if v == 1:
                ph.write(i, out, 1)
    with machine.phase() as ph:
        handle = ph.read(0, out)
    return meter.result(1 if handle.value == 1 else 0)


def parity_erew(
    machine: PRAM, bits: Sequence[int], alloc: Optional[Allocator] = None
) -> RunResult:
    """Binary-tree parity in Theta(log n) EREW steps.

    Each tree level takes three steps (read left child, read right child,
    write parent), with every cell touched by exactly one processor per
    step — exclusive reads and writes throughout.
    """
    _require_variant(machine, "EREW", "CREW", "CRCW")
    values = _check_bits(bits)
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    base = alloc.alloc(len(values))
    machine.load(values, base=base)
    size = len(values)
    proc = 0
    while size > 1:
        groups = size // 2
        odd = size % 2
        nxt = alloc.alloc(groups + odd)
        left = []
        with machine.phase() as ph:
            for j in range(groups):
                left.append(ph.read(proc + j, base + 2 * j))
        right = []
        with machine.phase() as ph:
            for j in range(groups):
                right.append(ph.read(proc + j, base + 2 * j + 1))
        with machine.phase() as ph:
            for j in range(groups):
                ph.write(proc + j, nxt + j, int(left[j].value) ^ int(right[j].value))
        if odd:
            with machine.phase() as ph:
                carry = ph.read(proc + groups, base + size - 1)
            with machine.phase() as ph:
                ph.write(proc + groups, nxt + groups, int(carry.value))
        proc += groups + odd
        base, size = nxt, groups + odd

    with machine.phase() as ph:
        handle = ph.read(0, base)
    return meter.result(int(handle.value))


def parity_crcw(
    machine: PRAM,
    bits: Sequence[int],
    block_size: Optional[int] = None,
    alloc: Optional[Allocator] = None,
) -> RunResult:
    """Pattern-method parity in Theta(log n / log log n) CRCW steps.

    Per level, blocks of ``b ~ log n`` bits are evaluated in O(1) steps:
    one reader per (block, pattern, position) reads its bit (concurrent
    reads are free), mismatching readers write a common flag to their
    pattern cell (COMMON-compatible: everyone writes 1), one checker per
    pattern reads the flag, and the unique clean pattern writes the block
    parity.  Levels shrink n by the factor b, giving the
    ``log n / log log n`` step count whose optimality is Beame-Hastad [3].
    """
    _require_variant(machine, "CRCW")
    values = _check_bits(bits)
    n = len(values)
    if block_size is None:
        block_size = max(2, min(MAX_BLOCK_BITS, int(math.log2(max(4, n)))))
    if block_size < 2:
        raise ValueError(f"block size must be >= 2, got {block_size}")
    b = block_size
    alloc = alloc or fresh_allocator(machine)
    meter = CostMeter(machine)

    base = alloc.alloc(n)
    machine.load(values, base=base)
    size = n
    proc = 0
    levels = 0
    while size > 1:
        groups = -(-size // b)
        out_base = alloc.alloc(groups)
        flag_base = alloc.alloc(groups << b)

        readers = {}
        with machine.phase() as ph:
            for j in range(groups):
                width = min(b, size - j * b)
                for q in range(1 << width):
                    for i in range(width):
                        readers[(j, q, i)] = ph.read(proc, base + j * b + i)
                        proc += 1
        with machine.phase() as ph:
            for (j, q, i), handle in readers.items():
                if int(handle.value) != (q >> i) & 1:
                    ph.write(handle.proc, flag_base + (j << b) + q, 1)
        checkers = {}
        with machine.phase() as ph:
            for j in range(groups):
                width = min(b, size - j * b)
                for q in range(1 << width):
                    checkers[(j, q)] = ph.read(proc, flag_base + (j << b) + q)
                    proc += 1
        with machine.phase() as ph:
            for (j, q), handle in checkers.items():
                if handle.value is None:
                    ph.write(handle.proc, out_base + j, bin(q).count("1") & 1)
        base, size = out_base, groups
        levels += 1

    with machine.phase() as ph:
        handle = ph.read(0, base)
    return meter.result(int(handle.value or 0), block_size=b, levels=levels)
