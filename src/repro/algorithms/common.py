"""Shared plumbing for the algorithm implementations.

* :class:`RunResult` — what every algorithm returns: the answer plus the
  simulated cost delta it incurred on its machine.
* :class:`Allocator` — a bump allocator over the machine's address space so
  algorithms can lay out inputs and scratch arrays without clashing.
* Fan-in selection helpers — the Section 8 algorithms pick tree fan-ins as a
  function of the machine's parameters (``g`` on the QSM, 2 on the s-QSM,
  ``L/g`` on the BSP); centralising the choice makes the fan-in ablation
  (`ABL-fanin`) a one-liner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.machine import SharedMemoryMachine
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = [
    "RunResult",
    "Allocator",
    "default_tree_fanin",
    "bsp_fanin",
    "mpc_fanin",
    "model_name",
    "CostMeter",
]

Machine = Union[QSM, SQSM, GSM, BSP]


@dataclass(frozen=True)
class RunResult:
    """Answer plus the cost the algorithm added to its machine.

    Attributes
    ----------
    value:
        The algorithm's output (problem-specific shape).
    time:
        Simulated model time consumed by this run (delta, not machine total).
    phases:
        Number of phases (shared-memory) or supersteps (BSP) executed.
    extra:
        Free-form per-algorithm diagnostics (iteration counts, contention
        peaks, retries...).
    """

    value: Any
    time: float
    phases: int
    extra: dict = field(default_factory=dict)


class CostMeter:
    """Snapshot a machine's cost counters; measure the delta of one run."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self._time0 = machine.time
        self._phases0 = self._phase_count()

    def _phase_count(self) -> int:
        if isinstance(self.machine, BSP):
            return self.machine.superstep_count
        return self.machine.phase_count

    def result(self, value: Any, **extra: Any) -> RunResult:
        return RunResult(
            value=value,
            time=self.machine.time - self._time0,
            phases=self._phase_count() - self._phases0,
            extra=dict(extra),
        )


class Allocator:
    """Bump allocator over a shared-memory machine's address space."""

    def __init__(self, base: int = 0) -> None:
        if base < 0:
            raise ValueError(f"base address must be non-negative, got {base}")
        self._next = base

    def alloc(self, size: int) -> int:
        """Reserve ``size`` consecutive cells; returns the base address."""
        if size < 0:
            raise ValueError(f"allocation size must be non-negative, got {size}")
        base = self._next
        self._next += size
        return base

    @property
    def watermark(self) -> int:
        """One past the highest address handed out."""
        return self._next


def fresh_allocator(machine: Machine) -> Allocator:
    """An allocator starting above everything the machine has written.

    Lets several algorithm invocations share one machine without address
    collisions; pass an explicit allocator to control layout instead.
    """
    if isinstance(machine, BSP):
        return Allocator()
    return Allocator(base=machine.next_free_address())


def model_name(machine: Machine) -> str:
    """Short model tag for result tables (checks subclasses before bases)."""
    from repro.core.qsm_gd import QSMGD
    from repro.models.mpc import MPC
    from repro.models.pem import PEM

    if isinstance(machine, SQSM):
        return "s-QSM"
    if isinstance(machine, QSMGD):
        return "QSM(g,d)"
    if isinstance(machine, QSM):
        return "QSM"
    if isinstance(machine, GSM):
        return "GSM"
    if isinstance(machine, PEM):
        return "PEM"
    if isinstance(machine, MPC):  # before BSP: MPC subclasses it
        return "MPC"
    if isinstance(machine, BSP):
        return "BSP"
    raise TypeError(f"unsupported machine type: {type(machine)!r}")


def default_tree_fanin(machine: Machine, contention_cheap: bool = False) -> int:
    """The fan-in the Section 8 algorithms use for reduction trees.

    * QSM with contention-cheap combining (OR-style write tournaments, or
      any read-based step whose contention is charged raw): fan-in ``g`` —
      the per-phase cost stays ``max(g, kappa) = g`` while the tree height
      shrinks to ``log n / log g``.
    * s-QSM (contention costs ``g`` each) and read-combining on the QSM
      (``m_rw`` costs ``g`` each): fan-in 2; larger fan-ins only raise the
      per-phase cost proportionally.
    * GSM: ``alpha`` reads per processor and ``beta`` contention fit in one
      big-step, so fan-in ``max(2, min(alpha, beta))``.
    * PEM: ``B`` reads per processor are one block I/O, so fan-in
      ``max(2, B)`` — the tree height shrinks to ``log n / log B`` at one
      I/O per level.
    """
    from repro.core.qsm_gd import QSMGD
    from repro.models.pem import PEM

    if isinstance(machine, SQSM):
        return 2
    if isinstance(machine, QSMGD):
        if contention_cheap:
            # Cost max(g, d*k) is flat until k = g/d.
            return max(2, int(machine.params.g / machine.params.d))
        return 2
    if isinstance(machine, QSM):
        if contention_cheap:
            return max(2, int(machine.params.g))
        return 2
    if isinstance(machine, GSM):
        prm = machine.params
        return max(2, int(min(prm.alpha, prm.beta)))
    if isinstance(machine, PEM):
        return max(2, int(machine.params.B))
    raise TypeError(f"tree fan-in undefined for machine type: {type(machine)!r}")


def bsp_fanin(machine: BSP) -> int:
    """BSP reduction fan-in ``max(2, L/g)``: receiving ``L/g`` messages costs
    ``g * (L/g) = L``, no more than the superstep floor ``L`` already charged.

    An :class:`~repro.models.mpc.MPC` machine (a BSP subclass carrying
    :class:`~repro.core.params.MPCParams` instead of g/L) dispatches to
    :func:`mpc_fanin`, so the ``*_bsp`` algorithms pick the ``s``-ary
    tuning on MPC without per-call-site changes.
    """
    from repro.models.mpc import MPC

    if isinstance(machine, MPC):
        return mpc_fanin(machine)
    if not isinstance(machine, BSP):
        raise TypeError(f"expected BSP, got {type(machine)!r}")
    prm = machine.params
    return max(2, int(prm.L // prm.g))


def mpc_fanin(machine: Any) -> int:
    """MPC reduction fan-in ``max(2, s)``: a machine may receive up to ``s``
    words per round at the unit round charge (``h <= s`` keeps
    :func:`repro.core.cost.mpc_round_cost` at its floor), so ``s``-ary
    reduction trees give the ``O(log_s n)``-round algorithms the MPC
    literature states."""
    from repro.models.mpc import MPC

    if not isinstance(machine, MPC):
        raise TypeError(f"expected MPC, got {type(machine)!r}")
    return max(2, int(machine.params.s))
