"""Growth-shape checks — the finite-n meaning of Omega / Theta / O.

Given measured costs and a reference curve (a lower- or upper-bound formula
evaluated at the same parameters), three questions matter:

* **Dominance** (Omega): is there one constant ``c`` such that
  ``measured >= c * reference`` across the sweep?  The witness is
  ``dominance_constant = min(measured / reference)``; any positive value is
  a valid Omega constant for the observed range.
* **Boundedness** (Theta tightness): does ``measured / reference`` stay in a
  bounded band, i.e. no growth trend across the sweep?
  :func:`bounded_ratio` checks max/min ratio spread; :func:`ratio_trend`
  reports the log-log slope of the ratio against ``n`` (near 0 for Theta).
* **Upper-bound tracking** (O): same as dominance with the roles swapped.

These are deliberately simple statistics: the benches print them next to
the raw rows so a reader can audit the claim, and EXPERIMENTS.md records
them per table cell.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["dominance_constant", "bounded_ratio", "ratio_trend", "loglog_slope"]


def dominance_constant(measured: Sequence[float], reference: Sequence[float]) -> float:
    """``min_i measured_i / reference_i`` — the largest valid Omega constant.

    Positive iff the measurement dominates the reference everywhere (with
    constant = the returned value).
    """
    if len(measured) != len(reference) or not measured:
        raise ValueError("need equal-length, non-empty sequences")
    worst = math.inf
    for m, r in zip(measured, reference):
        if r <= 0:
            raise ValueError(f"reference values must be positive, got {r}")
        worst = min(worst, m / r)
    return worst


def bounded_ratio(
    measured: Sequence[float],
    reference: Sequence[float],
    band: float = 4.0,
) -> Tuple[bool, float]:
    """Is ``measured/reference`` confined to a multiplicative band?

    Returns ``(within_band, spread)`` where spread = max ratio / min ratio.
    ``spread <= band`` is the executable reading of "Theta up to constants"
    over the sweep range.
    """
    if band < 1.0:
        raise ValueError(f"band must be >= 1, got {band}")
    ratios = []
    for m, r in zip(measured, reference):
        if r <= 0 or m <= 0:
            raise ValueError("bounded_ratio needs positive values")
        ratios.append(m / r)
    if not ratios:
        raise ValueError("empty input")
    spread = max(ratios) / min(ratios)
    return spread <= band, spread


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need >= 2 paired points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mx = sum(lx) / len(lx)
    my = sum(ly) / len(ly)
    denom = sum((a - mx) ** 2 for a in lx)
    if denom == 0:
        raise ValueError("x values are all equal")
    return sum((a - mx) * (b - my) for a, b in zip(lx, ly)) / denom


def ratio_trend(
    ns: Sequence[float],
    measured: Sequence[float],
    reference: Sequence[float],
) -> float:
    """Log-log slope of measured/reference against n.

    ~0: the reference captures the growth (Theta-like).
    >0: measurement grows faster (reference is a strict lower bound).
    <0: measurement grows slower (reference would be violated at scale —
    a red flag the tests treat as failure).
    """
    ratios = [m / r for m, r in zip(measured, reference)]
    return loglog_slope(ns, ratios)
