"""Phase-history inspection: render what a machine was charged, and why.

``explain(machine)`` produces a per-phase table showing the quantities the
Section 2 cost formulas consumed — ``m_op``, ``m_rw``, ``kappa`` (split
into read and write queues), the big-step count on the GSM, and which term
of the max() dominated the charge.  This is the first thing to look at when
an algorithm costs more than expected on some model.

Since the cost-provenance layer landed, the "which term won" logic lives in
the machines' ``_cost_terms`` hooks (the ``*_cost_terms`` functions of
:mod:`repro.core.cost`) shared with :mod:`repro.obs`;
:func:`dominant_term` keeps its historical human-readable labels on top of
them, and :func:`explain_summary` renders the per-run dominant-term
aggregation (:func:`repro.obs.summarize`) as one line per term.
"""

from __future__ import annotations

from typing import List, Union

from repro.analysis.tables import render_table
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["explain", "explain_summary", "dominant_term", "TERM_LABELS"]

Machine = Union[QSM, SQSM, GSM, BSP]

#: Cost-term keys (as emitted by the ``*_cost_terms`` functions) to the
#: human-readable labels ``explain`` tables have always printed.
TERM_LABELS = {
    "m_op": "m_op (local)",
    "g*m_rw": "g*m_rw (requests)",
    "kappa": "kappa (contention)",
    "g*kappa": "kappa (contention)",
    "d*kappa": "kappa (contention)",
    "mu*ceil(m_rw/alpha)": "m_rw/alpha",
    "mu*ceil(kappa/beta)": "kappa/beta",
    "w": "w (local work)",
    "g*h": "g*h (communication)",
    "L": "L (latency floor)",
    "step": "step (unit time)",
}


def term_label(term: str) -> str:
    """Human-readable label for a cost-term key (identity for unknown keys)."""
    return TERM_LABELS.get(term, term)


def dominant_term(machine: Machine, index: int) -> str:
    """Which term of the phase-cost max() set the charge for phase ``index``."""
    from repro.obs.records import dominant_of

    return term_label(dominant_of(machine._cost_terms(machine.history[index])))


def explain(machine: Machine, limit: int = 50) -> str:
    """Render the machine's phase history as an aligned table (first
    ``limit`` phases)."""
    rows: List[list] = []
    if isinstance(machine, BSP):
        for rec, cost in list(zip(machine.history, machine.step_costs))[:limit]:
            rows.append([rec.index, rec.w, rec.h, rec.total_messages, cost,
                         dominant_term(machine, rec.index)])
        return render_table(
            ["step", "w", "h", "msgs", "cost", "dominated by"],
            rows,
            title=f"BSP superstep history (showing {min(limit, len(rows))} of {machine.superstep_count})",
        )
    for rec, cost in list(zip(machine.history, machine.phase_costs))[:limit]:
        read_q = max(rec.read_queue.values(), default=0)
        write_q = max(rec.write_queue.values(), default=0)
        rows.append([rec.index, rec.m_op, rec.m_rw, read_q, write_q, cost,
                     dominant_term(machine, rec.index)])
    title = f"{type(machine).__name__} phase history (showing {min(limit, len(rows))} of {machine.phase_count})"
    return render_table(
        ["phase", "m_op", "m_rw", "read q", "write q", "cost", "dominated by"],
        rows,
        title=title,
    )


def explain_summary(machine: Machine) -> str:
    """Render the run's dominant-term aggregation: one row per term.

    Each row shows how many phases the term won, the summed cost of those
    phases, and the cost-weighted fraction — the same numbers the Table 1
    drivers attach to their ``BENCH_*.json`` points.
    """
    from repro.obs.records import machine_cost_records, summarize

    summary = summarize(machine_cost_records(machine))
    rows: List[list] = []
    for term, phase_count in sorted(
        summary.dominant_phases.items(),
        key=lambda item: -summary.dominant_cost[item[0]],
    ):
        cost = summary.dominant_cost[term]
        fraction = summary.fractions.get(term, 0.0)
        rows.append([term_label(term), phase_count, round(cost, 2), f"{fraction:.1%}"])
    return render_table(
        ["dominant term", "phases won", "cost", "share"],
        rows,
        title=(
            f"{machine.model_label} dominant-term summary "
            f"({summary.phases} phases, total cost {summary.total_cost:g})"
        ),
    )
