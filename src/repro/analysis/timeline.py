"""Phase-history inspection: render what a machine was charged, and why.

``explain(machine)`` produces a per-phase table showing the quantities the
Section 2 cost formulas consumed — ``m_op``, ``m_rw``, ``kappa`` (split
into read and write queues), the big-step count on the GSM, and which term
of the max() dominated the charge.  This is the first thing to look at when
an algorithm costs more than expected on some model.
"""

from __future__ import annotations

from typing import List, Union

from repro.analysis.tables import render_table
from repro.core.bsp import BSP
from repro.core.gsm import GSM
from repro.core.qsm import QSM
from repro.core.sqsm import SQSM

__all__ = ["explain", "dominant_term"]

Machine = Union[QSM, SQSM, GSM, BSP]


def dominant_term(machine: Machine, index: int) -> str:
    """Which term of the phase-cost max() set the charge for phase ``index``."""
    if isinstance(machine, BSP):
        rec = machine.history[index]
        prm = machine.params
        cost = machine.step_costs[index]
        if cost == prm.L and prm.L >= max(rec.w, prm.g * rec.h):
            return "L (latency floor)"
        if cost == prm.g * rec.h:
            return "g*h (communication)"
        return "w (local work)"
    rec = machine.history[index]
    cost = machine.phase_costs[index]
    if isinstance(machine, GSM):
        return "m_rw/alpha" if rec.m_rw / machine.params.alpha >= rec.kappa / machine.params.beta else "kappa/beta"
    prm = machine.params
    g = prm.g
    if cost == rec.m_op and rec.m_op >= g * rec.m_rw:
        return "m_op (local)"
    contention_charge = getattr(prm, "d", None)
    if isinstance(machine, SQSM):
        contention_cost = g * rec.kappa
    elif contention_charge is not None:
        contention_cost = contention_charge * rec.kappa
    else:
        contention_cost = float(rec.kappa)
    if contention_cost > g * rec.m_rw:
        return "kappa (contention)"
    return "g*m_rw (requests)"


def explain(machine: Machine, limit: int = 50) -> str:
    """Render the machine's phase history as an aligned table (first
    ``limit`` phases)."""
    rows: List[list] = []
    if isinstance(machine, BSP):
        for rec, cost in list(zip(machine.history, machine.step_costs))[:limit]:
            rows.append([rec.index, rec.w, rec.h, rec.total_messages, cost,
                         dominant_term(machine, rec.index)])
        return render_table(
            ["step", "w", "h", "msgs", "cost", "dominated by"],
            rows,
            title=f"BSP superstep history (showing {min(limit, len(rows))} of {machine.superstep_count})",
        )
    for rec, cost in list(zip(machine.history, machine.phase_costs))[:limit]:
        read_q = max(rec.read_queue.values(), default=0)
        write_q = max(rec.write_queue.values(), default=0)
        rows.append([rec.index, rec.m_op, rec.m_rw, read_q, write_q, cost,
                     dominant_term(machine, rec.index)])
    title = f"{type(machine).__name__} phase history (showing {min(limit, len(rows))} of {machine.phase_count})"
    return render_table(
        ["phase", "m_op", "m_rw", "read q", "write q", "cost", "dominated by"],
        rows,
        title=title,
    )
