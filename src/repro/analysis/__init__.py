"""Measurement plumbing for the benchmark harness.

* :mod:`repro.analysis.sweep` — run an algorithm/machine factory over a
  parameter grid, collecting simulated cost and verifier verdicts.
* :mod:`repro.analysis.parallel_sweep` — the multiprocessing-backed drop-in
  for :func:`sweep` (per-point process isolation, deterministic per-point
  seeding, JSON result cache for resumable benches).
* :mod:`repro.analysis.fit` — growth-shape checking: fit a single constant
  against a reference curve and test dominance / boundedness / monotone
  trends, the executable meaning of Omega/Theta at finite n (DESIGN.md
  "Shape expectations").
* :mod:`repro.analysis.tables` — fixed-width table rendering for the
  paper-style output of each bench.
"""

from repro.analysis.fit import bounded_ratio, dominance_constant, ratio_trend
from repro.analysis.parallel_sweep import (
    SweepPointError,
    bench_cache_path,
    derive_point_seed,
    parallel_sweep,
)
from repro.analysis.sweep import SweepPoint, grid_points, point_from_outcome, sweep
from repro.analysis.tables import render_table

__all__ = [
    "sweep",
    "parallel_sweep",
    "bench_cache_path",
    "derive_point_seed",
    "grid_points",
    "point_from_outcome",
    "SweepPoint",
    "SweepPointError",
    "dominance_constant",
    "bounded_ratio",
    "ratio_trend",
    "render_table",
]
