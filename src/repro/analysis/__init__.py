"""Measurement plumbing for the benchmark harness.

* :mod:`repro.analysis.sweep` — run an algorithm/machine factory over a
  parameter grid, collecting simulated cost and verifier verdicts.
* :mod:`repro.analysis.fit` — growth-shape checking: fit a single constant
  against a reference curve and test dominance / boundedness / monotone
  trends, the executable meaning of Omega/Theta at finite n (DESIGN.md
  "Shape expectations").
* :mod:`repro.analysis.tables` — fixed-width table rendering for the
  paper-style output of each bench.
"""

from repro.analysis.fit import bounded_ratio, dominance_constant, ratio_trend
from repro.analysis.sweep import SweepPoint, sweep
from repro.analysis.tables import render_table

__all__ = [
    "sweep",
    "SweepPoint",
    "dominance_constant",
    "bounded_ratio",
    "ratio_trend",
    "render_table",
]
