"""Parameter-sweep engine.

A sweep runs one experiment configuration per grid point: build a fresh
machine, run the algorithm, verify the answer, record the simulated cost
next to the matching lower-bound formula value.  Sweeps are plain data in /
plain data out so benches stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["SweepPoint", "sweep", "grid_points", "point_from_outcome"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome."""

    params: Mapping[str, Any]
    measured: float  # simulated time or round count
    bound: Optional[float]  # lower-bound formula value at these params
    correct: bool
    extra: Mapping[str, Any] = field(default_factory=dict)

    @property
    def ratio(self) -> Optional[float]:
        """measured / bound (None when no bound applies)."""
        if self.bound is None or self.bound == 0:
            return None
        return self.measured / self.bound

    @property
    def failed(self) -> bool:
        """True for an error record from a fault-tolerant parallel sweep.

        :func:`repro.analysis.parallel_sweep.parallel_sweep` with
        ``on_error="record"`` emits such points when a grid point exhausts
        its attempts; ``measured`` is NaN and ``correct`` False there.
        """
        return "error" in self.extra

    @property
    def error(self) -> Optional[str]:
        """The failure message of an error record (None on success)."""
        return self.extra.get("error")

    @property
    def dominant_terms(self) -> Optional[Mapping[str, float]]:
        """Cost-weighted dominant-term fractions, when the run reported them.

        Populated by drivers whose ``run`` callable includes a
        ``"dominant_terms"`` key (see
        :func:`repro.obs.records.dominant_fractions`) — e.g.
        ``{"kappa": 0.62, "g*m_rw": 0.38}`` means 62% of the measured cost
        came from contention-bound phases.  ``None`` when the run did not
        record cost provenance.
        """
        return self.extra.get("dominant_terms")

    @property
    def dominant(self) -> Optional[str]:
        """The single term dominating the largest cost share, if reported."""
        fractions = self.dominant_terms
        if not fractions:
            return None
        return max(fractions.items(), key=lambda item: item[1])[0]


def grid_points(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Enumerate the cartesian grid as parameter dicts, in sweep order.

    The order is the canonical iteration order shared by :func:`sweep` and
    :func:`repro.analysis.parallel_sweep.parallel_sweep`, so serial and
    parallel runs of the same grid return points in the same positions.
    """
    keys = list(grid.keys())
    return [dict(zip(keys, combo)) for combo in product(*(grid[k] for k in keys))]


def point_from_outcome(params: Mapping[str, Any], outcome: Dict[str, Any]) -> SweepPoint:
    """Build a :class:`SweepPoint` from a ``run(**params)`` outcome dict.

    ``outcome`` must have keys ``measured`` (float) and ``correct`` (bool),
    may have ``bound`` (float), and anything else is kept in ``extra``.
    """
    if "measured" not in outcome or "correct" not in outcome:
        raise ValueError("run() must return 'measured' and 'correct'")
    extra = {
        k: v for k, v in outcome.items() if k not in ("measured", "correct", "bound")
    }
    return SweepPoint(
        params=dict(params),
        measured=float(outcome["measured"]),
        bound=(float(outcome["bound"]) if outcome.get("bound") is not None else None),
        correct=bool(outcome["correct"]),
        extra=extra,
    )


def sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Dict[str, Any]],
) -> List[SweepPoint]:
    """Run ``run(**point)`` for every point of the cartesian grid.

    ``run`` must return a dict with keys ``measured`` (float), ``correct``
    (bool), optionally ``bound`` (float) and anything else (kept in
    ``extra``).  See :mod:`repro.analysis.parallel_sweep` for the
    multiprocessing-backed drop-in used by large grids.
    """
    return [point_from_outcome(params, run(**params)) for params in grid_points(grid)]
