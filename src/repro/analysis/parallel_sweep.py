"""Multiprocessing-backed parameter sweeps — a fault-tolerant drop-in for
:func:`sweep`.

Large Table 1 sweeps are embarrassingly parallel: every grid point builds a
fresh machine, runs one algorithm, and verifies independently.
:func:`parallel_sweep` farms the grid points out to worker *processes* (one
process per point, so a point can never observe another point's interpreter
state) and returns the points in the same order
:func:`repro.analysis.sweep.sweep` would.

Fault tolerance
---------------
A long sweep must not lose hours of completed points to one bad grid point
(see docs/ROBUSTNESS.md for the full contract):

* **Timeouts** — ``timeout`` bounds each point's runtime; a point that
  exceeds it has its worker process terminated.
* **Crash isolation** — a worker that dies (segfault, ``os._exit``, OOM
  kill) fails only its own point; the sweep keeps going.
* **Retries** — ``retries`` re-runs a failed point up to that many extra
  times, with exponential ``backoff`` between attempts; a success after
  retries carries ``extra["sweep_attempts"]``.
* **Partial results** — with ``on_error="record"``, a point whose attempts
  are exhausted yields a :class:`SweepPoint` with ``measured=nan``,
  ``correct=False`` and ``extra["error"]`` (``SweepPoint.failed`` /
  ``SweepPoint.error`` read it back) instead of aborting the sweep.  The
  default ``on_error="raise"`` raises :class:`SweepPointError`; either
  way every outcome completed before the failure persists to the cache.

Determinism
-----------
Grid points are enumerated in the canonical :func:`grid_points` order and
results are reassembled in that order, so a parallel run returns the same
``SweepPoint`` list as a serial one.  When the ``run`` callable takes an
explicit seed, pass ``seed_arg`` and each point receives
:func:`derive_point_seed` of its parameters — a per-point seed that depends
only on the point (not on scheduling, job count, or enumeration order), so
serial and parallel runs of any job count agree bit for bit.

Result cache
------------
Pass ``cache_path`` (conventionally ``BENCH_<name>.json``; see
:func:`bench_cache_path`) to persist every completed point's outcome as
JSON.  Re-runs load the file and only execute grid points that are missing,
so an interrupted sweep resumes where it stopped and repeated bench runs
give the repository a perf trajectory for free.  Cached outcomes round-trip
through JSON: keep ``extra`` values JSON-serializable if you rely on the
cache.  Error outcomes are **never** cached — a re-run retries them.
Writes are atomic (write-to-temp + rename), and an unreadable or
schema-invalid cache file is *quarantined* (renamed to
``<path>.quarantined`` with a warning) rather than aborting the sweep;
individually invalid entries are dropped the same way.

Cost provenance
---------------
The Table 1 drivers run their machines with ``record_costs=True`` and put
``dominant_terms`` (the cost-weighted dominant-term fractions of
:func:`repro.obs.records.dominant_fractions`) into each outcome dict, so
every persisted ``BENCH_*.json`` point records *why* it cost what it did —
``SweepPoint.dominant_terms`` reads it back.  The fractions are plain
``{term: float}`` dicts and survive the JSON round trip unchanged.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import time
import warnings
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepPoint, grid_points, point_from_outcome

__all__ = [
    "parallel_sweep",
    "point_key",
    "derive_point_seed",
    "default_jobs",
    "bench_cache_path",
    "SweepPointError",
    "JOBS_ENV",
    "EXECUTOR_ENV",
    "EXECUTORS",
]


class SweepPointError(RuntimeError):
    """A grid point exhausted its attempts (``on_error="raise"`` mode).

    ``params`` is the failing point, ``error`` the last failure message.
    """

    def __init__(self, params: Mapping[str, Any], error: str, attempts: int) -> None:
        super().__init__(
            f"sweep point {dict(params)!r} failed after {attempts} attempt(s): {error}"
        )
        self.params = dict(params)
        self.error = error
        self.attempts = attempts

#: Environment variable consulted for the default job count; the CLI's
#: ``--jobs`` flag sets it so every bench in a run picks it up.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding the ``executor="auto"`` resolution —
#: set ``REPRO_EXECUTOR=process`` to A/B the legacy process-per-point
#: path against the warm pool (``benchmarks/bench_sched.py`` does).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Recognised executors.  ``auto`` resolves to ``serial`` for
#: ``jobs=1`` without a timeout and to ``pool`` (the warm worker pool of
#: :mod:`repro.sched.pool`) otherwise; ``process`` is the legacy
#: process-per-point path kept for comparison benches and as the
#: maximum-isolation fallback.
EXECUTORS = ("auto", "serial", "process", "pool")


def default_jobs() -> int:
    """Job count when ``jobs`` is not given: ``$REPRO_JOBS`` or the CPU count."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def point_key(params: Mapping[str, Any]) -> str:
    """Stable string identity of one grid point (cache key, seed input).

    Key order is canonicalised so ``{'n': 4, 'g': 2}`` and
    ``{'g': 2, 'n': 4}`` name the same point.
    """
    return json.dumps(dict(params), sort_keys=True, default=repr)


def derive_point_seed(base_seed: Any, params: Mapping[str, Any]) -> int:
    """Deterministic 63-bit seed for one grid point.

    Depends only on ``base_seed`` and the point's parameters — not on the
    job count, worker scheduling, or the position of the point in the grid —
    so serial and parallel sweeps hand each point the same randomness.
    """
    digest = hashlib.sha256(
        f"{base_seed!r}|{point_key(params)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def bench_cache_path(name: str, root: str = ".") -> str:
    """Conventional cache location for a named bench: ``<root>/BENCH_<name>.json``."""
    safe = "".join(c if (c.isalnum() or c in "-_") else "_" for c in name)
    return os.path.join(root, f"BENCH_{safe}.json")


def _call_point(
    run: Callable[..., Dict[str, Any]],
    params: Mapping[str, Any],
    seed_arg: Optional[str],
    base_seed: Any,
) -> Dict[str, Any]:
    kwargs = dict(params)
    if seed_arg is not None:
        kwargs[seed_arg] = derive_point_seed(base_seed, params)
    return run(**kwargs)


def _pipe_worker(conn, run, params, seed_arg, base_seed) -> None:
    """Child-process entry: run one point, send the outcome down the pipe."""
    try:
        outcome = _call_point(run, params, seed_arg, base_seed)
        conn.send(("ok", outcome))
    except BaseException as exc:  # report crashes of any stripe to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def _valid_cache_entry(value: Any) -> bool:
    """Schema check for one cached outcome: the :func:`point_from_outcome`
    contract, and not a (never-cached, but defend anyway) error record."""
    return (
        isinstance(value, dict)
        and "measured" in value
        and "correct" in value
        and "error" not in value
    )


def _quarantine(path: str, reason: str) -> None:
    quarantined = path + ".quarantined"
    os.replace(path, quarantined)
    warnings.warn(
        f"sweep cache {path} is unusable ({reason}); moved to {quarantined} "
        "and rebuilding from scratch",
        RuntimeWarning,
        stacklevel=3,
    )


def _load_cache(path: str) -> Dict[str, Dict[str, Any]]:
    """Load a sweep cache; quarantine it (never raise) when unreadable."""
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if not isinstance(data, dict):
            raise ValueError("top level is not a JSON object")
    except (OSError, ValueError) as exc:
        _quarantine(path, str(exc))
        return {}
    valid = {key: value for key, value in data.items() if _valid_cache_entry(value)}
    if len(valid) != len(data):
        warnings.warn(
            f"sweep cache {path}: dropped {len(data) - len(valid)} "
            "schema-invalid entr(y/ies); those points will re-run",
            RuntimeWarning,
            stacklevel=3,
        )
    return valid


def _store_cache(path: str, mapping: Dict[str, Dict[str, Any]]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=".sweep-cache-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(mapping, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)  # atomic: readers never see a torn file
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class _Attempting:
    """Retry bookkeeping for one pending grid point."""

    __slots__ = ("params", "key", "failures", "not_before", "last_error")

    def __init__(self, params: Dict[str, Any]) -> None:
        self.params = params
        self.key = point_key(params)
        self.failures = 0
        self.not_before = 0.0
        self.last_error = ""


def _error_outcome(error: str, attempts: int) -> Dict[str, Any]:
    return {
        "measured": float("nan"),
        "correct": False,
        "error": error,
        "sweep_attempts": attempts,
    }


def _run_serial(
    pending: List[_Attempting],
    outcomes: Dict[str, Dict[str, Any]],
    run: Callable[..., Dict[str, Any]],
    seed_arg: Optional[str],
    base_seed: Any,
    retries: int,
    backoff: float,
    on_error: str,
) -> None:
    """In-process execution (no pickling requirement, no timeout support)."""
    for task in pending:
        while True:
            try:
                outcome = _call_point(run, task.params, seed_arg, base_seed)
            except Exception as exc:
                task.failures += 1
                task.last_error = f"{type(exc).__name__}: {exc}"
                if task.failures <= retries:
                    if backoff > 0:
                        time.sleep(backoff * 2 ** (task.failures - 1))
                    continue
                if on_error == "raise":
                    raise SweepPointError(
                        task.params, task.last_error, task.failures
                    ) from exc
                outcomes[task.key] = _error_outcome(task.last_error, task.failures)
                break
            if task.failures:
                outcome = dict(outcome)
                outcome["sweep_attempts"] = task.failures + 1
            outcomes[task.key] = outcome
            break


def _run_processes(
    pending: List[_Attempting],
    outcomes: Dict[str, Dict[str, Any]],
    run: Callable[..., Dict[str, Any]],
    seed_arg: Optional[str],
    base_seed: Any,
    jobs: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    on_error: str,
) -> None:
    """Process-per-point execution with watchdog, retries, crash isolation."""
    from multiprocessing import get_context
    from multiprocessing.connection import wait as conn_wait

    ctx = get_context()
    queue: List[_Attempting] = list(pending)
    active: List[Tuple[Any, Any, _Attempting, float]] = []  # (proc, conn, task, deadline)

    def reap(proc: Any, conn: Any) -> None:
        try:
            conn.close()
        except OSError:
            pass
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - stuck even after terminate
            proc.kill()
            proc.join()

    def fail(task: _Attempting, error: str) -> None:
        task.failures += 1
        task.last_error = error
        if task.failures <= retries:
            task.not_before = time.monotonic() + (
                backoff * 2 ** (task.failures - 1) if backoff > 0 else 0.0
            )
            queue.append(task)
            return
        if on_error == "raise":
            for proc, conn, _, _ in active:
                proc.terminate()
                reap(proc, conn)
            raise SweepPointError(task.params, error, task.failures)
        outcomes[task.key] = _error_outcome(error, task.failures)

    try:
        while queue or active:
            # Launch ready tasks into free worker slots.
            now = time.monotonic()
            ready = [t for t in queue if t.not_before <= now]
            while ready and len(active) < jobs:
                task = ready.pop(0)
                queue.remove(task)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_pipe_worker,
                    args=(child_conn, run, task.params, seed_arg, base_seed),
                )
                proc.start()
                child_conn.close()  # parent keeps only its end
                deadline = now + timeout if timeout is not None else math.inf
                active.append((proc, parent_conn, task, deadline))
            if not active:
                # Everything pending is backing off; sleep until one is due.
                wake = min(t.not_before for t in queue)
                time.sleep(max(0.0, min(wake - time.monotonic(), 0.1)))
                continue

            # Wait for a result, a crash, or the nearest deadline.
            nearest = min(deadline for _, _, _, deadline in active)
            wait_for = (
                max(0.001, min(nearest - time.monotonic(), 0.5))
                if nearest < math.inf
                else 0.5
            )
            ready_conns = set(conn_wait([conn for _, conn, _, _ in active], wait_for))

            still_active = []
            for proc, conn, task, deadline in active:
                # A worker may finish between conn_wait and the liveness
                # check below; poll() catches its parting message either way.
                if conn in ready_conns or (not proc.is_alive() and conn.poll()):
                    try:
                        status, payload = conn.recv()
                    except (EOFError, OSError):
                        # The pipe closed with nothing in it: worker died.
                        reap(proc, conn)
                        fail(task, f"worker crashed (exit code {proc.exitcode})")
                        continue
                    reap(proc, conn)
                    if status == "ok":
                        if task.failures:
                            payload = dict(payload)
                            payload["sweep_attempts"] = task.failures + 1
                        outcomes[task.key] = payload
                    else:
                        fail(task, str(payload))
                elif not proc.is_alive():
                    reap(proc, conn)
                    fail(task, f"worker crashed (exit code {proc.exitcode})")
                elif time.monotonic() >= deadline:
                    proc.terminate()
                    reap(proc, conn)
                    fail(task, f"timed out after {timeout}s")
                else:
                    still_active.append((proc, conn, task, deadline))
            active = still_active
    except BaseException:
        for proc, conn, _, _ in active:  # interrupted: leave no orphans
            proc.terminate()
            reap(proc, conn)
        raise


def _run_pool(
    pending: List[_Attempting],
    outcomes: Dict[str, Dict[str, Any]],
    run: Callable[..., Dict[str, Any]],
    seed_arg: Optional[str],
    base_seed: Any,
    jobs: int,
    timeout: Optional[float],
    retries: int,
    backoff: float,
    on_error: str,
    pool: Optional[Any] = None,
) -> None:
    """Warm-pool execution: same watchdog/retry/isolation contract as
    :func:`_run_processes`, minus the per-point process launch."""
    from repro.sched.pool import WorkerPool

    owns_pool = pool is None
    if pool is None:
        pool = WorkerPool(jobs=jobs)
    tasks_by_key = {task.key: task for task in pending}
    waiting: List[_Attempting] = list(pending)  # unsubmitted (new or backing off)
    in_flight: set = set()

    def fail(task: _Attempting, error: str) -> None:
        task.failures += 1
        task.last_error = error
        if task.failures <= retries:
            task.not_before = time.monotonic() + (
                backoff * 2 ** (task.failures - 1) if backoff > 0 else 0.0
            )
            waiting.append(task)
            return
        if on_error == "raise":
            raise SweepPointError(task.params, error, task.failures)
        outcomes[task.key] = _error_outcome(error, task.failures)

    try:
        while waiting or in_flight:
            now = time.monotonic()
            for task in [t for t in waiting if t.not_before <= now]:
                waiting.remove(task)
                in_flight.add(task.key)
                pool.submit(
                    task.key,
                    _call_point,
                    {
                        "run": run,
                        "params": task.params,
                        "seed_arg": seed_arg,
                        "base_seed": base_seed,
                    },
                    timeout=timeout,
                )
            if not in_flight:
                # Everything left is backing off; sleep until one is due.
                wake = min(t.not_before for t in waiting)
                time.sleep(max(0.0, min(wake - time.monotonic(), 0.1)))
                continue
            for event in pool.events(wait=0.5):
                task = tasks_by_key.get(event.key)
                if task is None or event.key not in in_flight:
                    continue  # a shared pool's stale leftovers
                in_flight.discard(event.key)
                if event.ok:
                    payload = event.payload
                    if task.failures:
                        payload = dict(payload)
                        payload["sweep_attempts"] = task.failures + 1
                    outcomes[task.key] = payload
                else:
                    fail(task, str(event.payload))
    finally:
        if owns_pool:
            pool.shutdown()


def parallel_sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Dict[str, Any]],
    jobs: Optional[int] = None,
    cache_path: Optional[str] = None,
    seed_arg: Optional[str] = None,
    base_seed: Any = 0,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.0,
    on_error: str = "raise",
    executor: str = "auto",
    pool: Optional[Any] = None,
    store: Optional[Any] = None,
    store_scope: Optional[str] = None,
    engine: Optional[Any] = None,
) -> List[SweepPoint]:
    """Run ``run(**point)`` over the grid with ``jobs`` workers.

    Drop-in for :func:`repro.analysis.sweep.sweep`: same grid semantics,
    same outcome contract (``measured``/``correct``/``bound``/extras), same
    result order.  Differences:

    * points execute in up to ``jobs`` worker processes (default:
      ``$REPRO_JOBS`` or the CPU count) selected by ``executor``:
      ``"pool"`` (the warm worker pool of :mod:`repro.sched.pool` — the
      default whenever workers are needed), ``"process"`` (the legacy
      one-fresh-process-per-point path), ``"serial"`` (in-process), or
      ``"auto"`` (serial for ``jobs=1`` without a timeout, else the pool;
      ``$REPRO_EXECUTOR`` overrides).  Pass an existing
      :class:`~repro.sched.pool.WorkerPool` as ``pool`` to share warm
      workers across sweeps;
    * with ``seed_arg``, each call receives ``run(**point, seed_arg=s)``
      where ``s = derive_point_seed(base_seed, point)``;
    * with ``cache_path``, completed outcomes persist to JSON and re-runs
      skip points already present in the file; with ``store`` (a
      :class:`repro.sched.store.ResultStore` — mutually exclusive with
      ``cache_path``), outcomes persist content-addressed under
      ``(store_scope or run's module:qualname, point params, base seed,
      store version)`` instead, unifying every driver's resume cache in
      one place;
    * ``timeout`` / ``retries`` / ``backoff`` / ``on_error`` add the fault
      tolerance described in the module docstring;
    * with ``engine`` (one engine name or a sequence of them), an
      ``"engine"`` axis of :func:`repro.core.resolve_engine`-resolved
      names is injected into the grid, so each point runs as
      ``run(**point, engine=<name>)`` and point keys (cache/store
      identity) carry the engine they were measured on.  Note that
      ``engine="vector"`` resolves to ``"reference"`` on hosts without
      numpy — the injected axis records what actually ran.

    ``run`` must be picklable (a module-level function) when worker
    processes are used; serial execution has no pickling requirement
    (crashes there are ordinary exceptions, still subject to retries and
    ``on_error``).  All executors produce bit-identical results for a
    deterministic ``run`` — property-tested in
    ``tests/property/test_sched_props.py``.
    """
    if jobs is not None and int(jobs) < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    if store is not None and cache_path is not None:
        raise ValueError("pass either cache_path or store, not both")
    if engine is not None:
        from repro.core.engine_vector import resolve_engine

        names = [engine] if isinstance(engine, str) else list(engine)
        if "engine" in grid:
            raise ValueError("grid already has an 'engine' axis; drop the engine= argument")
        grid = dict(grid)
        grid["engine"] = [resolve_engine(name) for name in names]

    points = grid_points(grid)
    jobs = default_jobs() if jobs is None else int(jobs)
    resolved = executor
    if resolved == "auto":
        env = os.environ.get(EXECUTOR_ENV, "").strip()
        if env:
            if env not in ("serial", "process", "pool"):
                raise ValueError(
                    f"{EXECUTOR_ENV} must be serial, process or pool, got {env!r}"
                )
            resolved = env
        else:
            resolved = "serial" if (jobs == 1 and timeout is None and pool is None) else "pool"
    if resolved == "serial" and timeout is not None:
        raise ValueError("the serial executor cannot enforce timeouts")

    cache = _load_cache(cache_path) if cache_path else {}
    store_keys: Dict[str, str] = {}
    if store is not None:
        scope = run if store_scope is None else store_scope
        extra = {"base_seed": base_seed} if seed_arg is not None else None
        for params in points:
            store_keys[point_key(params)] = store.key_for(scope, params, extra)

    from repro.obs import metrics as _metrics

    def _count_points(source: str, n: int = 1) -> None:
        _metrics.REGISTRY.counter(
            "repro_sweep_points_total", "sweep points by result source"
        ).inc(n, source=source)

    outcomes: Dict[str, Dict[str, Any]] = {}
    pending: List[_Attempting] = []
    for params in points:
        key = point_key(params)
        if key in cache:
            outcomes[key] = cache[key]
            if _metrics.REGISTRY.enabled:
                _count_points("cache")
            continue
        if store is not None:
            stored = store.get_outcome(store_keys[key])
            if stored is not None and _valid_cache_entry(stored):
                outcomes[key] = stored
                if _metrics.REGISTRY.enabled:
                    _count_points("store")
                continue
        pending.append(_Attempting(dict(params)))

    try:
        if pending:
            if resolved == "serial":
                _run_serial(
                    pending, outcomes, run, seed_arg, base_seed,
                    retries, backoff, on_error,
                )
            elif resolved == "process":
                _run_processes(
                    pending, outcomes, run, seed_arg, base_seed,
                    jobs, timeout, retries, backoff, on_error,
                )
            else:
                _run_pool(
                    pending, outcomes, run, seed_arg, base_seed,
                    jobs, timeout, retries, backoff, on_error, pool=pool,
                )
    finally:
        # Persist whatever completed — even when a point raised — so an
        # aborted sweep resumes instead of restarting.  Error outcomes are
        # never cached: a re-run gives them a fresh chance.
        if cache_path:
            merged = dict(cache)
            merged.update(
                {k: v for k, v in outcomes.items() if _valid_cache_entry(v)}
            )
            _store_cache(cache_path, merged)
        elif store is not None:
            from repro.sched.store import task_spec

            for task in pending:
                value = outcomes.get(task.key)
                if value is not None and _valid_cache_entry(value):
                    store.put(
                        store_keys[task.key], value,
                        spec=task_spec(scope, task.params, extra),
                    )

    if _metrics.REGISTRY.enabled and pending:
        _count_points("run", len(pending))
        failures = sum(task.failures for task in pending)
        if failures:
            _metrics.REGISTRY.counter(
                "repro_sweep_point_failures_total",
                "failed point attempts (each one a retry or a recorded error)",
            ).inc(failures)

    return [point_from_outcome(params, outcomes[point_key(params)]) for params in points]
