"""Multiprocessing-backed parameter sweeps — a drop-in for :func:`sweep`.

Large Table 1 sweeps are embarrassingly parallel: every grid point builds a
fresh machine, runs one algorithm, and verifies independently.
:func:`parallel_sweep` farms the grid points out to worker *processes* (one
task per process via ``maxtasksperchild=1``, so a point can never observe
another point's interpreter state) and returns the points in the same order
:func:`repro.analysis.sweep.sweep` would.

Determinism
-----------
Grid points are enumerated in the canonical :func:`grid_points` order and
results are reassembled in that order, so a parallel run returns the same
``SweepPoint`` list as a serial one.  When the ``run`` callable takes an
explicit seed, pass ``seed_arg`` and each point receives
:func:`derive_point_seed` of its parameters — a per-point seed that depends
only on the point (not on scheduling, job count, or enumeration order), so
serial and parallel runs of any job count agree bit for bit.

Result cache
------------
Pass ``cache_path`` (conventionally ``BENCH_<name>.json``; see
:func:`bench_cache_path`) to persist every completed point's outcome as
JSON.  Re-runs load the file and only execute grid points that are missing,
so an interrupted sweep resumes where it stopped and repeated bench runs
give the repository a perf trajectory for free.  Cached outcomes round-trip
through JSON: keep ``extra`` values JSON-serializable if you rely on the
cache.

Cost provenance
---------------
The Table 1 drivers run their machines with ``record_costs=True`` and put
``dominant_terms`` (the cost-weighted dominant-term fractions of
:func:`repro.obs.records.dominant_fractions`) into each outcome dict, so
every persisted ``BENCH_*.json`` point records *why* it cost what it did —
``SweepPoint.dominant_terms`` reads it back.  The fractions are plain
``{term: float}`` dicts and survive the JSON round trip unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import SweepPoint, grid_points, point_from_outcome

__all__ = [
    "parallel_sweep",
    "point_key",
    "derive_point_seed",
    "default_jobs",
    "bench_cache_path",
    "JOBS_ENV",
]

#: Environment variable consulted for the default job count; the CLI's
#: ``--jobs`` flag sets it so every bench in a run picks it up.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Job count when ``jobs`` is not given: ``$REPRO_JOBS`` or the CPU count."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def point_key(params: Mapping[str, Any]) -> str:
    """Stable string identity of one grid point (cache key, seed input).

    Key order is canonicalised so ``{'n': 4, 'g': 2}`` and
    ``{'g': 2, 'n': 4}`` name the same point.
    """
    return json.dumps(dict(params), sort_keys=True, default=repr)


def derive_point_seed(base_seed: Any, params: Mapping[str, Any]) -> int:
    """Deterministic 63-bit seed for one grid point.

    Depends only on ``base_seed`` and the point's parameters — not on the
    job count, worker scheduling, or the position of the point in the grid —
    so serial and parallel sweeps hand each point the same randomness.
    """
    digest = hashlib.sha256(
        f"{base_seed!r}|{point_key(params)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") >> 1


def bench_cache_path(name: str, root: str = ".") -> str:
    """Conventional cache location for a named bench: ``<root>/BENCH_<name>.json``."""
    safe = "".join(c if (c.isalnum() or c in "-_") else "_" for c in name)
    return os.path.join(root, f"BENCH_{safe}.json")


def _call_point(
    run: Callable[..., Dict[str, Any]],
    params: Mapping[str, Any],
    seed_arg: Optional[str],
    base_seed: Any,
) -> Dict[str, Any]:
    kwargs = dict(params)
    if seed_arg is not None:
        kwargs[seed_arg] = derive_point_seed(base_seed, params)
    return run(**kwargs)


def _worker(task: Tuple[Callable[..., Dict[str, Any]], Dict[str, Any], Optional[str], Any]):
    run, params, seed_arg, base_seed = task
    return point_key(params), _call_point(run, params, seed_arg, base_seed)


def _load_cache(path: str) -> Dict[str, Dict[str, Any]]:
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except ValueError as exc:
            raise ValueError(
                f"sweep cache {path} is not valid JSON ({exc}); "
                "delete the file to rebuild it"
            ) from exc
    if not isinstance(data, dict):
        raise ValueError(f"sweep cache {path} is not a JSON object")
    return data


def _store_cache(path: str, mapping: Dict[str, Dict[str, Any]]) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(prefix=".sweep-cache-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(mapping, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)  # atomic: readers never see a torn file
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def parallel_sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Dict[str, Any]],
    jobs: Optional[int] = None,
    cache_path: Optional[str] = None,
    seed_arg: Optional[str] = None,
    base_seed: Any = 0,
) -> List[SweepPoint]:
    """Run ``run(**point)`` over the grid with ``jobs`` worker processes.

    Drop-in for :func:`repro.analysis.sweep.sweep`: same grid semantics,
    same outcome contract (``measured``/``correct``/``bound``/extras), same
    result order.  Differences:

    * points execute in up to ``jobs`` processes (default: ``$REPRO_JOBS``
      or the CPU count), each task in a fresh process;
    * with ``seed_arg``, each call receives ``run(**point, seed_arg=s)``
      where ``s = derive_point_seed(base_seed, point)``;
    * with ``cache_path``, completed outcomes persist to JSON and re-runs
      skip points already present in the file.

    ``run`` must be picklable (a module-level function) when ``jobs > 1``;
    ``jobs=1`` degrades to the serial path with no pickling requirement.
    """
    points = grid_points(grid)
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    cache = _load_cache(cache_path) if cache_path else {}

    outcomes: Dict[str, Dict[str, Any]] = {}
    pending: List[Dict[str, Any]] = []
    for params in points:
        key = point_key(params)
        if key in cache:
            outcomes[key] = cache[key]
        else:
            pending.append(params)

    if pending:
        if jobs == 1 or len(pending) == 1:
            for params in pending:
                outcomes[point_key(params)] = _call_point(run, params, seed_arg, base_seed)
        else:
            from multiprocessing import get_context

            tasks = [(run, params, seed_arg, base_seed) for params in pending]
            ctx = get_context()
            with ctx.Pool(processes=min(jobs, len(tasks)), maxtasksperchild=1) as pool:
                for key, outcome in pool.imap(_worker, tasks):
                    outcomes[key] = outcome

    if cache_path:
        merged = dict(cache)
        merged.update(outcomes)
        _store_cache(cache_path, merged)

    return [point_from_outcome(params, outcomes[point_key(params)]) for params in points]
