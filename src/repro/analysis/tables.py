"""Fixed-width table rendering for bench output.

The benches print paper-style tables (one row per Table 1 cell) to stdout;
this keeps the formatting in one place and trivially testable.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["render_table"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table; every row must match the header width."""
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    cells: List[List[str]] = [[_fmt(h) for h in headers]]
    cells += [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
