"""repro — executable reproduction of MacKenzie & Ramachandran (SPAA 1998).

"Computational Bounds for Fundamental Problems on General-Purpose Parallel
Models" proves time and round lower bounds for Linear Approximate
Compaction, OR and Parity on the QSM, s-QSM, BSP and GSM models, with
matching or near-matching upper bounds.  This package makes the paper
executable:

* :mod:`repro.core` — the four cost models as discrete-event simulators;
* :mod:`repro.boolfn` — Boolean multilinear-polynomial algebra (Facts 2.1–2.3);
* :mod:`repro.algorithms` — every Section 8 upper-bound algorithm, running on
  the simulators;
* :mod:`repro.lowerbounds` — the Table 1 bound formulas plus the paper's
  proof machinery (degree arguments, the Random Adversary, Yao's principle)
  as runnable engines;
* :mod:`repro.problems` — instance generators and output verifiers;
* :mod:`repro.analysis` — parameter sweeps, growth-shape fitting, table
  rendering for the benchmark harness.

Quickstart::

    from repro.core import SQSM, SQSMParams
    from repro.algorithms.parity import parity_tree

    machine = SQSM(SQSMParams(g=4))
    result = parity_tree(machine, [1, 0, 1, 1, 0, 0, 1, 0])
    print(result.value, machine.time)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
