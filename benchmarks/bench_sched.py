"""Experiment sched — warm-pool vs process-per-point sweep throughput.

The campaign scheduler's core bet (docs/SCHEDULER.md) is that keeping
worker processes warm — import :mod:`repro` once, then stream pickled
tasks — beats PR 3's process-per-point execution, which pays a fresh
interpreter plus a full ``repro`` import for every grid point.  This
driver measures that bet on a small-n slice of the Table 1a grid:

* ``pool``    — :class:`repro.sched.pool.WorkerPool` via
  ``parallel_sweep(executor="pool")`` (the new default for worker runs);
* ``process`` — the legacy one-process-per-point path
  (``executor="process"``);
* ``serial``  — in-process baseline, for scale.

All three must produce bit-identical sweep results (also pinned by
``tests/property/test_sched_props.py``); the point of the bench is the
points-per-second ratio, written to ``BENCH_sched.json`` alongside the
raw timings.  Run it via ``python -m repro sched``.

A second leg (``hosts``) measures the TCP worker fabric
(docs/DISTRIBUTED.md): the same demo-task list drained over 1, 2, and 4
simulated hosts — local worker processes dialling a
:class:`~repro.sched.net.pool.RemoteWorkerPool` on 127.0.0.1.  The
committed acceptance floors are 1.6x at 2 hosts and 2.4x (near-linear)
at 4; ``bench check`` re-measures both legs against the baseline.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from benchmarks.bench_table1_qsm_time import run_t1a_point
from benchmarks.common import PerfRow, print_perf_rows
from repro.analysis.parallel_sweep import default_jobs, parallel_sweep

#: Small-n Table 1a slice: cheap enough that per-point process launch
#: overhead dominates on the "process" path — exactly the regime campaigns
#: live in.  36 points.
GRID = {
    "problem": ["LAC", "OR", "Parity"],
    "variant": ["deterministic", "randomized"],
    "n": [16, 24, 32, 48, 64, 96],
}

EXECUTORS = ("serial", "process", "pool")

#: The multi-host A/B leg: one TCP fabric, N simulated hosts (local
#: worker processes dialling 127.0.0.1), the same task list each time.
#: Tasks sleep HOST_TASK_DELAY so the leg measures scheduling/fan-out,
#: not numpy throughput — with 24 tasks of 20ms the serial floor is
#: ~0.5s and near-linear scaling is visible well above timer noise.
HOST_COUNTS = (1, 2, 4)
HOST_TASKS = 24
HOST_TASK_DELAY = 0.02


def _grid_size(grid: Dict[str, List]) -> int:
    total = 1
    for values in grid.values():
        total *= len(values)
    return total


def _measure_hosts(hosts: int, tasks: int = HOST_TASKS,
                   delay: float = HOST_TASK_DELAY) -> float:
    """Wall time to drain ``tasks`` demo points over ``hosts`` TCP workers.

    Registration is setup, not measured; the clock covers submit →
    last completion.  Any non-``ok`` event fails the bench — the fabric
    under no injected faults must be loss-free (docs/DISTRIBUTED.md).
    """
    from repro.sched.campaigns import demo_task
    from repro.sched.net.pool import RemoteWorkerPool
    from repro.sched.net.worker import spawn_local_workers

    pool = RemoteWorkerPool(port=0, jobs=hosts)
    procs = spawn_local_workers(pool.address, hosts, name_prefix=f"bench{hosts}")
    try:
        deadline = time.monotonic() + 30.0
        while len(pool.registry.live()) < hosts:
            pool.events(wait=0.05)
            if time.monotonic() > deadline:
                raise RuntimeError(f"only {len(pool.registry.live())}/{hosts} "
                                   "bench workers registered")
        # One warm task per host before the clock starts: the first task
        # on a fresh worker pays the demo-task module import, which would
        # otherwise bill a per-host constant against the scaling curve.
        for i in range(hosts):
            pool.submit(f"h{hosts}-warm{i}", demo_task, {"n": 32, "delay": 0.0})
        warmed = 0
        while warmed < hosts:
            if time.monotonic() > deadline:
                raise RuntimeError(f"hosts={hosts} warmup stalled")
            warmed += sum(1 for e in pool.events(wait=0.2) if e.status == "ok")
        t0 = time.perf_counter()
        for i in range(tasks):
            pool.submit(f"h{hosts}-t{i}", demo_task, {"n": 32, "delay": delay})
        done = 0
        while done < tasks:
            if time.monotonic() > deadline:
                raise RuntimeError(f"hosts={hosts} leg stalled at {done}/{tasks}")
            for event in pool.events(wait=0.2):
                if event.status != "ok":
                    raise RuntimeError(
                        f"hosts={hosts} task {event.key} {event.status}: "
                        f"{event.payload}"
                    )
                if not event.payload.get("correct"):
                    raise RuntimeError(f"hosts={hosts} task {event.key} incorrect")
                done += 1
        return time.perf_counter() - t0
    finally:
        pool.shutdown()
        for proc in procs:
            proc.wait(timeout=10)


def collect_hosts() -> Dict[str, object]:
    """The 1-vs-2-vs-4 simulated-host scaling summary."""
    timings = {str(h): _measure_hosts(h) for h in HOST_COUNTS}
    t1 = timings["1"]
    return {
        "tasks": HOST_TASKS,
        "task_delay_s": HOST_TASK_DELAY,
        "timings": timings,
        "throughput": {h: HOST_TASKS / t for h, t in timings.items()},
        "speedup_2x": t1 / timings["2"],
        "speedup_4x": t1 / timings["4"],
    }


def collect(jobs: Optional[int] = None) -> Dict[str, object]:
    """Time the slice under each executor; verify bit-identical results."""
    jobs = default_jobs() if jobs is None else jobs
    points = _grid_size(GRID)
    results = {}
    timings: Dict[str, float] = {}
    for executor in EXECUTORS:
        t0 = time.perf_counter()
        results[executor] = parallel_sweep(
            GRID, run_t1a_point, jobs=jobs, executor=executor
        )
        timings[executor] = time.perf_counter() - t0
    identical = results["serial"] == results["process"] == results["pool"]
    return {
        "jobs": jobs,
        "points": points,
        "timings": timings,
        "throughput": {ex: points / timings[ex] for ex in EXECUTORS},
        "speedup_pool_vs_process": timings["process"] / timings["pool"],
        "identical": identical,
        "correct": identical and all(p.correct for p in results["pool"]),
        "hosts": collect_hosts(),
    }


def write_bench_json(summary: Dict[str, object], path: Optional[str] = None) -> str:
    """Persist the measurement to ``BENCH_sched.json``; returns the path.

    The file lands in ``$REPRO_BENCH_CACHE`` when set (next to the other
    ``BENCH_*.json`` artifacts), else the current directory.
    """
    if path is None:
        root = os.environ.get("REPRO_BENCH_CACHE") or "."
        path = os.path.join(root, "BENCH_sched.json")
    payload = {k: v for k, v in summary.items()}
    payload["grid"] = GRID
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main() -> None:
    summary = collect()
    points = summary["points"]
    rows = [
        PerfRow(
            path=executor,
            n=points,
            ops=points,
            seconds=summary["timings"][executor],
            note={"serial": "in-process baseline",
                  "process": "one process per point",
                  "pool": "warm worker pool"}[executor],
        )
        for executor in EXECUTORS
    ]
    print_perf_rows(
        f"Sweep executors on a {points}-point Table 1a slice "
        f"(--jobs {summary['jobs']})",
        rows,
        baseline="process",
    )
    print(
        f"\nwarm pool vs process-per-point: "
        f"{summary['speedup_pool_vs_process']:.2f}x point throughput; "
        f"results identical: {summary['identical']}"
    )
    hosts = summary["hosts"]
    host_rows = [
        PerfRow(
            path=f"{h} host(s)",
            n=hosts["tasks"],
            ops=hosts["tasks"],
            seconds=hosts["timings"][str(h)],
            note="TCP fabric, local simulated hosts",
        )
        for h in HOST_COUNTS
    ]
    print()
    print_perf_rows(
        f"Remote fabric scaling on {hosts['tasks']} demo tasks "
        f"({hosts['task_delay_s'] * 1000:.0f}ms each)",
        host_rows,
        baseline="1 host(s)",
    )
    print(
        f"\nfabric scaling: {hosts['speedup_2x']:.2f}x at 2 hosts, "
        f"{hosts['speedup_4x']:.2f}x at 4 hosts"
    )
    out = write_bench_json(summary)
    print(f"wrote {out}")
    if not summary["correct"]:
        raise SystemExit("executors disagreed or produced incorrect points")
    if hosts["speedup_2x"] < 1.6:
        raise SystemExit(
            f"fabric scaling regressed: {hosts['speedup_2x']:.2f}x at 2 hosts "
            "(acceptance floor: 1.6x)"
        )
    if hosts["speedup_4x"] < 2.4:
        raise SystemExit(
            f"fabric scaling regressed: {hosts['speedup_4x']:.2f}x at 4 hosts "
            "(near-linear floor: 2.4x)"
        )


# --- pytest-benchmark targets ------------------------------------------------

def bench_sched_warm_pool_speedup(benchmark):
    summary = benchmark(lambda: collect(jobs=2))
    benchmark.extra_info["speedup_pool_vs_process"] = summary[
        "speedup_pool_vs_process"
    ]
    assert summary["identical"], "executors must produce bit-identical sweeps"
    assert summary["correct"]
    # The acceptance bar is >= 2x on an idle machine (BENCH_sched.json
    # records the real number); assert a conservative floor so a loaded CI
    # runner cannot flake the suite.
    assert summary["speedup_pool_vs_process"] > 1.2, (
        f"warm pool only {summary['speedup_pool_vs_process']:.2f}x "
        "process-per-point"
    )


if __name__ == "__main__":
    main()
