"""Experiment sched — warm-pool vs process-per-point sweep throughput.

The campaign scheduler's core bet (docs/SCHEDULER.md) is that keeping
worker processes warm — import :mod:`repro` once, then stream pickled
tasks — beats PR 3's process-per-point execution, which pays a fresh
interpreter plus a full ``repro`` import for every grid point.  This
driver measures that bet on a small-n slice of the Table 1a grid:

* ``pool``    — :class:`repro.sched.pool.WorkerPool` via
  ``parallel_sweep(executor="pool")`` (the new default for worker runs);
* ``process`` — the legacy one-process-per-point path
  (``executor="process"``);
* ``serial``  — in-process baseline, for scale.

All three must produce bit-identical sweep results (also pinned by
``tests/property/test_sched_props.py``); the point of the bench is the
points-per-second ratio, written to ``BENCH_sched.json`` alongside the
raw timings.  Run it via ``python -m repro sched``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from benchmarks.bench_table1_qsm_time import run_t1a_point
from benchmarks.common import PerfRow, print_perf_rows
from repro.analysis.parallel_sweep import default_jobs, parallel_sweep

#: Small-n Table 1a slice: cheap enough that per-point process launch
#: overhead dominates on the "process" path — exactly the regime campaigns
#: live in.  36 points.
GRID = {
    "problem": ["LAC", "OR", "Parity"],
    "variant": ["deterministic", "randomized"],
    "n": [16, 24, 32, 48, 64, 96],
}

EXECUTORS = ("serial", "process", "pool")


def _grid_size(grid: Dict[str, List]) -> int:
    total = 1
    for values in grid.values():
        total *= len(values)
    return total


def collect(jobs: Optional[int] = None) -> Dict[str, object]:
    """Time the slice under each executor; verify bit-identical results."""
    jobs = default_jobs() if jobs is None else jobs
    points = _grid_size(GRID)
    results = {}
    timings: Dict[str, float] = {}
    for executor in EXECUTORS:
        t0 = time.perf_counter()
        results[executor] = parallel_sweep(
            GRID, run_t1a_point, jobs=jobs, executor=executor
        )
        timings[executor] = time.perf_counter() - t0
    identical = results["serial"] == results["process"] == results["pool"]
    return {
        "jobs": jobs,
        "points": points,
        "timings": timings,
        "throughput": {ex: points / timings[ex] for ex in EXECUTORS},
        "speedup_pool_vs_process": timings["process"] / timings["pool"],
        "identical": identical,
        "correct": identical and all(p.correct for p in results["pool"]),
    }


def write_bench_json(summary: Dict[str, object], path: Optional[str] = None) -> str:
    """Persist the measurement to ``BENCH_sched.json``; returns the path.

    The file lands in ``$REPRO_BENCH_CACHE`` when set (next to the other
    ``BENCH_*.json`` artifacts), else the current directory.
    """
    if path is None:
        root = os.environ.get("REPRO_BENCH_CACHE") or "."
        path = os.path.join(root, "BENCH_sched.json")
    payload = {k: v for k, v in summary.items()}
    payload["grid"] = GRID
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main() -> None:
    summary = collect()
    points = summary["points"]
    rows = [
        PerfRow(
            path=executor,
            n=points,
            ops=points,
            seconds=summary["timings"][executor],
            note={"serial": "in-process baseline",
                  "process": "one process per point",
                  "pool": "warm worker pool"}[executor],
        )
        for executor in EXECUTORS
    ]
    print_perf_rows(
        f"Sweep executors on a {points}-point Table 1a slice "
        f"(--jobs {summary['jobs']})",
        rows,
        baseline="process",
    )
    print(
        f"\nwarm pool vs process-per-point: "
        f"{summary['speedup_pool_vs_process']:.2f}x point throughput; "
        f"results identical: {summary['identical']}"
    )
    out = write_bench_json(summary)
    print(f"wrote {out}")
    if not summary["correct"]:
        raise SystemExit("executors disagreed or produced incorrect points")


# --- pytest-benchmark targets ------------------------------------------------

def bench_sched_warm_pool_speedup(benchmark):
    summary = benchmark(lambda: collect(jobs=2))
    benchmark.extra_info["speedup_pool_vs_process"] = summary[
        "speedup_pool_vs_process"
    ]
    assert summary["identical"], "executors must produce bit-identical sweeps"
    assert summary["correct"]
    # The acceptance bar is >= 2x on an idle machine (BENCH_sched.json
    # records the real number); assert a conservative floor so a loaded CI
    # runner cannot flake the suite.
    assert summary["speedup_pool_vs_process"] > 1.2, (
        f"warm pool only {summary['speedup_pool_vs_process']:.2f}x "
        "process-per-point"
    )


if __name__ == "__main__":
    main()
