"""Experiment T1b — Table 1, "Time Lower Bounds for s-QSM".

Same protocol as T1a on the s-QSM simulator.  The headline cell is Parity
deterministic: the paper marks it Theta(g log n), and the binary parity
tree must sit in a bounded ratio band over the whole sweep.  The bench also
verifies the linear-in-g response all six formulas share on this model.
"""

from __future__ import annotations


import pytest

from benchmarks.common import CellRow, format_dominant, print_rows, summarise_cell, sweep_cache_kwargs
from repro.analysis.parallel_sweep import parallel_sweep
from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_tree
from repro.core import SQSM, SQSMParams
from repro.lowerbounds.formulas import bounds_for
from repro.obs import dominant_fractions
from repro.problems import (
    gen_bits,
    gen_sparse_array,
    verify_lac,
    verify_or,
    verify_parity,
)

NS = [2**8, 2**10, 2**12]
G = 4.0


def _run_cell_with_costs(problem: str, variant: str, n: int, g: float):
    """Run one cell on a cost-recording s-QSM; return (row, fractions)."""
    bound_entry = bounds_for(table="1b", problem=problem, variant=variant)[0]
    m = SQSM(SQSMParams(g=g), record_costs=True)
    if problem == "Parity":
        bits = gen_bits(n, seed=n)
        r = parity_tree(m, bits)
        correct = verify_parity(bits, r.value)
    elif problem == "OR":
        bits = gen_bits(n, density=0.05, seed=n)
        r = or_tree_writes(m, bits)
        correct = verify_or(bits, r.value)
    else:
        h = max(1, n // 16)
        arr = gen_sparse_array(n, h, seed=n, exact=True)
        if variant == "randomized":
            r = lac_dart(m, arr, h=h, seed=n)
        else:
            r = lac_prefix(m, arr, h=h)
        correct = verify_lac(arr, r.value, h)
    fractions = dominant_fractions(m)
    row = CellRow(
        problem, variant, n, f"g={g:g}", r.time, bound_entry.fn(n, g), correct,
        dominant=format_dominant(fractions),
    )
    return row, fractions


def _run_cell(problem: str, variant: str, n: int, g: float) -> CellRow:
    return _run_cell_with_costs(problem, variant, n, g)[0]


def run_t1b_point(problem: str, variant: str, n: int):
    """One grid point as a :func:`parallel_sweep` outcome (picklable)."""
    row, fractions = _run_cell_with_costs(problem, variant, n, G)
    return {
        "measured": row.measured,
        "bound": row.bound,
        "correct": row.correct,
        "dominant_terms": fractions,
    }


def collect_rows():
    grid = {
        "problem": ["LAC", "OR", "Parity"],
        "variant": ["deterministic", "randomized"],
        "n": NS,
    }
    points = parallel_sweep(grid, run_t1b_point, **sweep_cache_kwargs("t1b_sqsm_time"))
    return [
        CellRow(
            p.params["problem"],
            p.params["variant"],
            p.params["n"],
            f"g={G:g}",
            p.measured,
            p.bound,
            p.correct,
            dominant=format_dominant(p.dominant_terms),
        )
        for p in points
    ]


def g_response():
    """All s-QSM bounds and all measured costs scale linearly in g."""
    out = []
    for g in (2.0, 4.0, 8.0):
        row = _run_cell("Parity", "deterministic", 2**10, g)
        out.append((g, row.measured, row.bound))
    return out


def main() -> None:
    rows = collect_rows()
    verdicts = {}
    for problem in ("LAC", "OR", "Parity"):
        for variant in ("deterministic", "randomized"):
            cell = [r for r in rows if r.problem == problem and r.variant == variant]
            tight = problem == "Parity" and variant == "deterministic"
            verdicts[(problem, variant)] = summarise_cell(cell, tight=tight, band=8.0)
    print_rows('Table 1b: "Time Lower Bounds for s-QSM" (measured vs bound)', rows, verdicts)
    print()
    print("g-response (Parity det, n=1024):")
    for g, measured, bound in g_response():
        print(f"  g={g:4g}  measured={measured:8.0f}  bound={bound:8.1f}  ratio={measured/bound:5.2f}")


# --- pytest-benchmark targets ------------------------------------------------

@pytest.mark.parametrize("problem", ["LAC", "OR", "Parity"])
@pytest.mark.parametrize("variant", ["deterministic", "randomized"])
def bench_table1b_cell(benchmark, problem, variant):
    row = benchmark(lambda: _run_cell(problem, variant, NS[-1], G))
    benchmark.extra_info["simulated_time"] = row.measured
    benchmark.extra_info["bound"] = row.bound
    assert row.correct
    assert row.measured >= 0.5 * row.bound


def bench_table1b_parity_theta_tight(benchmark):
    rows = benchmark(
        lambda: [_run_cell("Parity", "deterministic", n, G) for n in NS]
    )
    verdict = summarise_cell(rows, tight=True, band=4.0)
    benchmark.extra_info["verdict"] = verdict
    assert verdict == "tight"


def bench_table1b_linear_in_g(benchmark):
    triples = benchmark(g_response)
    (g1, m1, b1), _, (g3, m3, b3) = triples
    assert m3 / m1 == pytest.approx((g3 / g1), rel=0.01)
    assert b3 / b1 == pytest.approx((g3 / g1), rel=0.01)


if __name__ == "__main__":
    main()
