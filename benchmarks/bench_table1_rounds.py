"""Experiment T1d — Table 1, "Number of Rounds for p-processor Algorithms".

For every cell of the rounds sub-table, run the rounds-mode algorithm
(local blocks + budget-wide trees), audit that every phase fits the round
budget of Section 2.3, and compare the audited round count against the
bound formula.  The paper marks six of the nine cells Theta; those must
come out in a bounded ratio band.  This also covers the S8-rounds claim
that simple prefix-sums-style algorithms match the round lower bounds.
"""

from __future__ import annotations


import pytest

from benchmarks.common import CellRow, format_dominant, print_rows, summarise_cell, sweep_cache_kwargs
from repro.analysis.parallel_sweep import parallel_sweep
from repro.obs import dominant_fractions
from repro.algorithms.compaction import lac_bsp, lac_prefix_rounds
from repro.algorithms.or_ import or_bsp, or_rounds
from repro.algorithms.parity import parity_bsp, parity_rounds
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.core.rounds import RoundAuditor
from repro.lowerbounds.formulas import bounds_for
from repro.problems import (
    gen_bits,
    gen_sparse_array,
    verify_lac,
    verify_or,
    verify_parity,
)

SWEEP = [(2**10, 2**5), (2**12, 2**6), (2**14, 2**7)]  # (n, p): n/p = 32..128
#: The sweep is a paired (n, p) diagonal, not a cartesian grid; the sweep
#: grid iterates over n and looks the matching p up here.
P_FOR = {n: p for n, p in SWEEP}
G, L = 4.0, 16.0


def _machine(model: str, p: int):
    if model == "QSM":
        return QSM(QSMParams(g=G), record_costs=True)
    if model == "s-QSM":
        return SQSM(SQSMParams(g=G), record_costs=True)
    return BSP(p, BSPParams(g=G, L=L), record_costs=True)


def _bound(model: str, problem: str, n: int, p: int) -> float:
    entry = bounds_for(table="1d", model=model, problem=problem)[0]
    if model == "BSP":
        return entry.fn(n, G, L, p)
    return entry.fn(n, G, p)


def _run_cell_with_costs(model: str, problem: str, n: int, p: int):
    """Run one rounds cell on a cost-recording machine; return (row, fractions)."""
    m = _machine(model, p)
    aud = RoundAuditor(m, n=n, p=p, constant=1.0)
    if problem == "Parity":
        bits = gen_bits(n, seed=n)
        r = parity_bsp(m, bits) if model == "BSP" else parity_rounds(m, bits, p=p)
        correct = verify_parity(bits, r.value)
    elif problem == "OR":
        bits = gen_bits(n, density=0.01, seed=n)
        r = or_bsp(m, bits) if model == "BSP" else or_rounds(m, bits, p=p)
        correct = verify_or(bits, r.value)
    else:  # LAC
        h = max(1, n // 64)
        arr = gen_sparse_array(n, h, seed=n, exact=True)
        if model == "BSP":
            r = lac_bsp(m, arr, h=h)
        else:
            r = lac_prefix_rounds(m, arr, p=p, h=h)
        correct = verify_lac(arr, r.value, h)
    aud.audit()
    correct = correct and aud.computes_in_rounds
    fractions = dominant_fractions(m)
    row = CellRow(
        problem, model, n, f"p={p}", float(aud.rounds), _bound(model, problem, n, p),
        correct, dominant=format_dominant(fractions),
    )
    return row, fractions


def _run_cell(model: str, problem: str, n: int, p: int) -> CellRow:
    return _run_cell_with_costs(model, problem, n, p)[0]


def run_t1d_point(model: str, problem: str, n: int):
    """One grid point as a :func:`parallel_sweep` outcome (picklable)."""
    row, fractions = _run_cell_with_costs(model, problem, n, P_FOR[n])
    return {
        "measured": row.measured,
        "bound": row.bound,
        "correct": row.correct,
        "dominant_terms": fractions,
    }


def collect_rows():
    grid = {
        "problem": ["LAC", "OR", "Parity"],
        "model": ["QSM", "s-QSM", "BSP"],
        "n": [n for n, _ in SWEEP],
    }
    points = parallel_sweep(grid, run_t1d_point, **sweep_cache_kwargs("t1d_rounds"))
    return [
        CellRow(
            p.params["problem"],
            p.params["model"],
            p.params["n"],
            f"p={P_FOR[p.params['n']]}",
            p.measured,
            p.bound,
            p.correct,
            dominant=format_dominant(p.dominant_terms),
        )
        for p in points
    ]


def main() -> None:
    rows = collect_rows()
    verdicts = {}
    for problem in ("LAC", "OR", "Parity"):
        for model in ("QSM", "s-QSM", "BSP"):
            cell = [r for r in rows if r.problem == problem and r.variant == model]
            entry = bounds_for(table="1d", model=model, problem=problem)[0]
            verdicts[(problem, model)] = summarise_cell(cell, tight=entry.tight, band=10.0)
    print_rows(
        'Table 1d: "Number of Rounds for p-processor Algorithms" '
        "(audited rounds vs bound)",
        rows,
        verdicts,
    )


# --- pytest-benchmark targets ------------------------------------------------

@pytest.mark.parametrize("model", ["QSM", "s-QSM", "BSP"])
@pytest.mark.parametrize("problem", ["LAC", "OR", "Parity"])
def bench_table1d_cell(benchmark, model, problem):
    n, p = SWEEP[1]
    row = benchmark(lambda: _run_cell(model, problem, n, p))
    benchmark.extra_info["rounds"] = row.measured
    benchmark.extra_info["bound"] = row.bound
    assert row.correct
    assert row.measured >= 0.5 * row.bound


@pytest.mark.parametrize("model,problem", [
    ("QSM", "OR"), ("s-QSM", "OR"), ("BSP", "OR"),
    ("s-QSM", "Parity"), ("BSP", "Parity"),
])
def bench_table1d_theta_cells_tight(benchmark, model, problem):
    rows = benchmark(lambda: [_run_cell(model, problem, n, p) for n, p in SWEEP])
    verdict = summarise_cell(rows, tight=True, band=10.0)
    benchmark.extra_info["verdict"] = verdict
    assert verdict == "tight"


if __name__ == "__main__":
    main()
