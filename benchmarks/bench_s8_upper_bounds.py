"""Experiments S8-* — the Section 8 upper-bound claims, measured.

For each claimed upper bound, the bench measures the simulated cost of the
implementation over an ``n`` sweep and checks that ``measured <= c * claim``
for a constant fitted at the smallest n — i.e. the measured curve grows no
faster than the claimed O(.) form over the sweep (and the log-log trend of
the ratio is not positive).

Claims covered:

* parity: O(g log n / log log g) on QSM; O(g log n / log g) with unit-time
  concurrent reads; O(g log n) on s-QSM; O(L log n / log(L/g)) on BSP.
* OR: O((g / log g) log n) on QSM; O(g log n) on s-QSM;
  O(L log n / log(L/g)) on BSP.
* LAC: dart throwing vs O(sqrt(g log n) + g log log n) on QSM and
  O(g sqrt(log n)) on s-QSM (our simplified variant is compared against
  O(g loglog n + measured contention); both printed).
* broadcast: Theta(g log n / log g) on QSM (from [1]), O(L log p/log(L/g))
  on BSP.
"""

from __future__ import annotations

import math

import pytest

from repro.algorithms.broadcast import broadcast_bsp, broadcast_shared
from repro.algorithms.compaction import lac_dart
from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_blocks, parity_bsp, parity_tree
from repro.analysis import render_table
from repro.analysis.fit import ratio_trend
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.problems import gen_bits, gen_sparse_array, verify_lac, verify_parity
from repro.util.mathfn import log2p, loglog2p

NS = [2**8, 2**10, 2**12]


def _claims():
    """(name, claim_fn(n), run_fn(n) -> measured). All verified runs."""
    g, L = 8.0, 32.0

    def parity_qsm(n):
        bits = gen_bits(n, seed=n)
        m = QSM(QSMParams(g=g))
        r = parity_blocks(m, bits)
        assert verify_parity(bits, r.value)
        return r.time

    def parity_qsm_cr(n):
        bits = gen_bits(n, seed=n)
        m = QSM(QSMParams(g=g, unit_time_concurrent_reads=True))
        r = parity_blocks(m, bits)
        assert verify_parity(bits, r.value)
        return r.time

    def parity_sqsm(n):
        bits = gen_bits(n, seed=n)
        r = parity_tree(SQSM(SQSMParams(g=g)), bits)
        assert verify_parity(bits, r.value)
        return r.time

    def parity_bsp_run(n):
        bits = gen_bits(n, seed=n)
        r = parity_bsp(BSP(64, BSPParams(g=g, L=L)), bits)
        assert verify_parity(bits, r.value)
        return r.time

    def or_qsm(n):
        bits = gen_bits(n, density=0.05, seed=n)
        return or_tree_writes(QSM(QSMParams(g=g)), bits).time

    def or_sqsm(n):
        bits = gen_bits(n, density=0.05, seed=n)
        return or_tree_writes(SQSM(SQSMParams(g=g)), bits).time

    def lac_qsm(n):
        h = max(1, n // 16)
        arr = gen_sparse_array(n, h, seed=n, exact=True)
        r = lac_dart(QSM(QSMParams(g=g)), arr, h=h, seed=n)
        assert verify_lac(arr, r.value, h)
        return r.time

    def bcast_qsm(n):
        return broadcast_shared(QSM(QSMParams(g=g)), 0, n).time

    def bcast_bsp(n):
        p = min(n, 256)
        return broadcast_bsp(BSP(p, BSPParams(g=g, L=L)), 0).time

    return [
        ("parity QSM O(g log n/loglog g)", lambda n: g * log2p(n) / loglog2p(g), parity_qsm),
        ("parity QSM-CR O(g log n/log g)", lambda n: g * log2p(n) / log2p(g), parity_qsm_cr),
        ("parity s-QSM O(g log n)", lambda n: g * log2p(n), parity_sqsm),
        (
            "parity BSP O(L log n/log(L/g))",
            lambda n: L * log2p(min(n, 64)) / log2p(L / g),
            parity_bsp_run,
        ),
        ("OR QSM O((g/log g) log n)", lambda n: g * log2p(n) / log2p(g), or_qsm),
        ("OR s-QSM O(g log n)", lambda n: g * log2p(n), or_sqsm),
        (
            "LAC QSM O(g loglog n + contention)",
            lambda n: g * loglog2p(n) + log2p(n) / loglog2p(n),
            lac_qsm,
        ),
        ("broadcast QSM O(g log n/log g)", lambda n: g * log2p(n) / log2p(g), bcast_qsm),
        (
            "broadcast BSP O(L log p/log(L/g))",
            lambda n: L * log2p(min(n, 256)) / log2p(L / g),
            bcast_bsp,
        ),
    ]


def run_s8_point(idx: int, n: int):
    """One Section 8 claim at one ``n``, as a picklable task outcome.

    The claim closures in :func:`_claims` capture machines and verifiers,
    so they cannot cross a process boundary; this module-level wrapper
    rebuilds them inside the worker, which is what lets the Section 8
    suite run as a campaign (``python -m repro campaign run section8``).
    """
    name, claim, run = _claims()[idx]
    measured = float(run(n))
    claimed = float(claim(n))
    return {
        "measured": measured,
        "claimed": claimed,
        "claim": name,
        "correct": True,  # every run_fn self-verifies via assert
    }


def collect():
    out = []
    for name, claim, run in _claims():
        measured = [float(run(n)) for n in NS]
        claims = [claim(n) for n in NS]
        c = measured[0] / claims[0]
        within = all(m <= 1.75 * c * v for m, v in zip(measured, claims))
        trend = ratio_trend(NS, measured, claims)
        out.append((name, measured, claims, c, within, trend))
    return out


def main() -> None:
    rows = []
    for name, measured, claims, c, within, trend in collect():
        for n, m, v in zip(NS, measured, claims):
            rows.append([name, n, m, round(v, 1), round(m / v, 2), round(trend, 3),
                         "tracks" if within else "OVERSHOOT"])
    print(
        render_table(
            ["claim", "n", "measured", "claimed O()", "ratio", "trend", "verdict"],
            rows,
            title="Section 8 upper bounds: measured simulated cost vs claimed form",
        )
    )


# --- pytest-benchmark targets ------------------------------------------------

@pytest.mark.parametrize("idx", range(9))
def bench_s8_claim(benchmark, idx):
    name, claim, run = _claims()[idx]
    measured = benchmark(lambda: run(NS[1]))
    benchmark.extra_info["claim"] = name
    benchmark.extra_info["simulated_time"] = float(measured)


def bench_s8_all_claims_track(benchmark):
    results = benchmark(collect)
    bad = [name for name, *_, within, trend in results if not within or trend > 0.6]
    assert not bad, f"claims overshooting their O() form: {bad}"


if __name__ == "__main__":
    main()
