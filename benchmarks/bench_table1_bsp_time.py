"""Experiment T1c — Table 1, "Time Lower Bounds for BSP" (q = min{n, p}).

Runs the BSP algorithms over (n, p, g, L) grids, checks dominance over each
cell's bound, that Parity deterministic is Theta-tight, and the L-response
(bounds and costs scale linearly in L at a fixed L/g ratio).
"""

from __future__ import annotations


import pytest

from benchmarks.common import CellRow, format_dominant, print_rows, summarise_cell, sweep_cache_kwargs
from repro.analysis.parallel_sweep import parallel_sweep
from repro.algorithms.compaction import lac_bsp
from repro.algorithms.or_ import or_bsp
from repro.algorithms.parity import parity_bsp
from repro.core import BSP, BSPParams
from repro.lowerbounds.formulas import bounds_for
from repro.obs import dominant_fractions
from repro.problems import (
    gen_bits,
    gen_sparse_array,
    verify_lac,
    verify_or,
    verify_parity,
)

NS = [2**8, 2**10, 2**12]
P = 64
G, L = 2.0, 16.0


def _run_cell_with_costs(problem: str, variant: str, n: int, p: int, g: float, L_: float):
    """Run one cell on a cost-recording BSP; return (row, fractions)."""
    bound_entry = bounds_for(table="1c", problem=problem, variant=variant)[0]
    b = BSP(p, BSPParams(g=g, L=L_), record_costs=True)
    if problem == "Parity":
        bits = gen_bits(n, seed=n + p)
        r = parity_bsp(b, bits)
        correct = verify_parity(bits, r.value)
    elif problem == "OR":
        bits = gen_bits(n, density=0.05, seed=n + p)
        r = or_bsp(b, bits)
        correct = verify_or(bits, r.value)
    else:
        h = max(1, n // 16)
        arr = gen_sparse_array(n, h, seed=n, exact=True)
        r = lac_bsp(b, arr, h=h)
        correct = verify_lac(arr, r.value, h)
    fractions = dominant_fractions(b)
    row = CellRow(
        problem,
        variant,
        n,
        f"p={p},g={g:g},L={L_:g}",
        r.time,
        bound_entry.fn(n, g, L_, p),
        correct,
        dominant=format_dominant(fractions),
    )
    return row, fractions


def _run_cell(problem: str, variant: str, n: int, p: int, g: float, L_: float) -> CellRow:
    return _run_cell_with_costs(problem, variant, n, p, g, L_)[0]


def run_t1c_point(problem: str, variant: str, n: int):
    """One grid point as a :func:`parallel_sweep` outcome (picklable)."""
    row, fractions = _run_cell_with_costs(problem, variant, n, P, G, L)
    return {
        "measured": row.measured,
        "bound": row.bound,
        "correct": row.correct,
        "dominant_terms": fractions,
    }


def collect_rows():
    grid = {
        "problem": ["LAC", "OR", "Parity"],
        "variant": ["deterministic", "randomized"],
        "n": NS,
    }
    points = parallel_sweep(grid, run_t1c_point, **sweep_cache_kwargs("t1c_bsp_time"))
    return [
        CellRow(
            p.params["problem"],
            p.params["variant"],
            p.params["n"],
            f"p={P},g={G:g},L={L:g}",
            p.measured,
            p.bound,
            p.correct,
            dominant=format_dominant(p.dominant_terms),
        )
        for p in points
    ]


def L_response():
    """Bounds and measured costs scale linearly in L at fixed L/g."""
    out = []
    for g, L_ in ((2.0, 8.0), (4.0, 16.0), (8.0, 32.0)):
        row = _run_cell("Parity", "deterministic", 2**10, P, g, L_)
        out.append((L_, row.measured, row.bound))
    return out


def main() -> None:
    rows = collect_rows()
    verdicts = {}
    for problem in ("LAC", "OR", "Parity"):
        for variant in ("deterministic", "randomized"):
            cell = [r for r in rows if r.problem == problem and r.variant == variant]
            tight = problem == "Parity" and variant == "deterministic"
            verdicts[(problem, variant)] = summarise_cell(cell, tight=tight, band=10.0)
    print_rows('Table 1c: "Time Lower Bounds for BSP" (measured vs bound)', rows, verdicts)
    print()
    print("L-response (Parity det, n=1024, L/g fixed at 4):")
    for L_, measured, bound in L_response():
        print(f"  L={L_:4g}  measured={measured:8.0f}  bound={bound:8.1f}  ratio={measured/bound:5.2f}")


# --- pytest-benchmark targets ------------------------------------------------

@pytest.mark.parametrize("problem", ["LAC", "OR", "Parity"])
def bench_table1c_cell(benchmark, problem):
    row = benchmark(lambda: _run_cell(problem, "deterministic", NS[-1], P, G, L))
    benchmark.extra_info["simulated_time"] = row.measured
    benchmark.extra_info["bound"] = row.bound
    assert row.correct
    assert row.measured >= 0.3 * row.bound


def bench_table1c_parity_theta_tight(benchmark):
    rows = benchmark(
        lambda: [_run_cell("Parity", "deterministic", n, P, G, L) for n in NS]
    )
    verdict = summarise_cell(rows, tight=True, band=8.0)
    benchmark.extra_info["verdict"] = verdict
    assert verdict == "tight"


def bench_table1c_linear_in_L(benchmark):
    triples = benchmark(L_response)
    (L1, m1, b1), _, (L3, m3, b3) = triples
    assert b3 / b1 == pytest.approx(L3 / L1, rel=0.01)
    assert m3 / m1 == pytest.approx(L3 / L1, rel=0.35)


if __name__ == "__main__":
    main()
