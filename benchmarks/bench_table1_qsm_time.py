"""Experiment T1a — Table 1, "Time Lower Bounds for QSM".

For each of the six cells (LAC / OR / Parity x deterministic / randomized)
this bench runs the matching Section 8 upper-bound algorithm on the QSM
simulator over an ``n`` sweep, prints the measured simulated time next to
the printed bound formula, and summarises the shape verdict.

Expected shapes (paper):

* Parity det: measured ``O(g log n / log log g)`` vs bound
  ``g log n / log g`` — near-tight, a ``log g / log log g`` factor apart.
  (With unit-time concurrent reads the pair is Theta-tight; see the
  concurrent-reads rows.)
* OR det: tournament ``O(g log n / log g)`` vs ``g log n /(loglog n+log g)``.
* LAC det: prefix compaction ``O(g log n)`` vs ``g sqrt(log n / ...)``;
  LAC rand: dart throwing vs ``g loglog n / log g`` — both leave the honest
  gaps the paper reports.
"""

from __future__ import annotations


import pytest

from benchmarks.common import CellRow, format_dominant, ns_from_env, print_rows, summarise_cell, sweep_cache_kwargs
from repro.analysis.parallel_sweep import parallel_sweep
from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_blocks
from repro.core import QSM, QSMParams
from repro.lowerbounds.formulas import bounds_for, qsm_parity_det_time_concurrent_reads
from repro.obs import dominant_fractions
from repro.problems import (
    gen_bits,
    gen_sparse_array,
    verify_lac,
    verify_or,
    verify_parity,
)

NS = ns_from_env([2**8, 2**10, 2**12])
G = 8.0


def _run_cell_with_costs(problem: str, variant: str, n: int, g: float):
    """Run one cell on a cost-recording QSM; return (row, dominant fractions)."""
    bound_entry = bounds_for(table="1a", problem=problem, variant=variant)[0]
    m = QSM(QSMParams(g=g), record_costs=True)
    if problem == "Parity":
        bits = gen_bits(n, seed=n)
        r = parity_blocks(m, bits)
        correct = verify_parity(bits, r.value)
        bound = bound_entry.fn(n, g)
    elif problem == "OR":
        bits = gen_bits(n, density=0.05, seed=n)
        r = or_tree_writes(m, bits)
        correct = verify_or(bits, r.value)
        bound = bound_entry.fn(n, g)
    else:  # LAC
        h = max(1, n // 16)
        arr = gen_sparse_array(n, h, seed=n, exact=True)
        if variant == "randomized":
            r = lac_dart(m, arr, h=h, seed=n)
        else:
            r = lac_prefix(m, arr, h=h)
        correct = verify_lac(arr, r.value, h)
        bound = bound_entry.fn(n, g)
    fractions = dominant_fractions(m)
    row = CellRow(
        problem, variant, n, f"g={g:g}", r.time, bound, correct,
        dominant=format_dominant(fractions),
    )
    return row, fractions


def _run_cell(problem: str, variant: str, n: int, g: float) -> CellRow:
    return _run_cell_with_costs(problem, variant, n, g)[0]


def run_t1a_point(problem: str, variant: str, n: int):
    """One grid point as a :func:`parallel_sweep` outcome (picklable).

    ``dominant_terms`` rides along in the outcome's extras, so the
    ``BENCH_t1a_qsm_time.json`` cache records why each point cost what it
    did (e.g. a kappa-bound vs bandwidth-bound crossover as ``g`` varies).
    """
    row, fractions = _run_cell_with_costs(problem, variant, n, G)
    return {
        "measured": row.measured,
        "bound": row.bound,
        "correct": row.correct,
        "dominant_terms": fractions,
    }


def collect_rows():
    # The main 3x2xNS grid runs through parallel_sweep: ``--jobs N`` (or
    # REPRO_JOBS) fans the cells out over worker processes.  REPRO_STORE
    # persists finished points to the shared content-addressed result store
    # (also visible to `python -m repro campaign run table1`); the legacy
    # REPRO_BENCH_CACHE keeps a per-driver BENCH_t1a_qsm_time.json instead.
    grid = {
        "problem": ["LAC", "OR", "Parity"],
        "variant": ["deterministic", "randomized"],
        "n": NS,
    }
    points = parallel_sweep(grid, run_t1a_point, **sweep_cache_kwargs("t1a_qsm_time"))
    return [
        CellRow(
            p.params["problem"],
            p.params["variant"],
            p.params["n"],
            f"g={G:g}",
            p.measured,
            p.bound,
            p.correct,
            dominant=format_dominant(p.dominant_terms),
        )
        for p in points
    ]


def lac_nproc_rows():
    """Table 1a's second LAC randomized entry: Omega(g log* n) with n
    processors (Theorem 6.2's log*-term at p = n)."""
    from repro.lowerbounds.formulas import qsm_lac_rand_time_nproc

    rows = []
    for n in NS:
        h = max(1, n // 16)
        arr = gen_sparse_array(n, h, seed=n, exact=True)
        m = QSM(QSMParams(g=G), record_costs=True)
        r = lac_dart(m, arr, h=h, seed=n)
        rows.append(
            CellRow(
                "LAC(n-proc)",
                "randomized",
                n,
                f"g={G:g},p=n",
                r.time,
                qsm_lac_rand_time_nproc(n, G),
                verify_lac(arr, r.value, h),
                dominant=format_dominant(dominant_fractions(m)),
            )
        )
    return rows


def concurrent_reads_rows():
    """The Theta entry of Table 1a: parity with unit-time concurrent reads."""
    rows = []
    for n in NS:
        g = 8.0
        m = QSM(QSMParams(g=g, unit_time_concurrent_reads=True), record_costs=True)
        bits = gen_bits(n, seed=n)
        r = parity_blocks(m, bits)
        rows.append(
            CellRow(
                "Parity(CR)",
                "deterministic",
                n,
                f"g={g:g}",
                r.time,
                qsm_parity_det_time_concurrent_reads(n, g),
                verify_parity(bits, r.value),
                dominant=format_dominant(dominant_fractions(m)),
            )
        )
    return rows


def main() -> None:
    rows = collect_rows() + lac_nproc_rows() + concurrent_reads_rows()
    verdicts = {}
    for problem in ("LAC", "LAC(n-proc)", "OR", "Parity", "Parity(CR)"):
        for variant in ("deterministic", "randomized"):
            cell = [r for r in rows if r.problem == problem and r.variant == variant]
            if not cell:
                continue
            tight = problem == "Parity(CR)"
            verdicts[(problem, variant)] = summarise_cell(cell, tight=tight, band=8.0)
    print_rows('Table 1a: "Time Lower Bounds for QSM" (measured vs bound)', rows, verdicts)


# --- pytest-benchmark targets (one per problem family) ----------------------

@pytest.mark.parametrize("problem", ["LAC", "OR", "Parity"])
def bench_table1a_deterministic(benchmark, problem):
    row = benchmark(lambda: _run_cell(problem, "deterministic", NS[-1], G))
    benchmark.extra_info["simulated_time"] = row.measured
    benchmark.extra_info["bound"] = row.bound
    assert row.correct
    assert row.measured >= 0.5 * row.bound  # dominance with constant 1/2


@pytest.mark.parametrize("problem", ["LAC", "OR", "Parity"])
def bench_table1a_randomized(benchmark, problem):
    row = benchmark(lambda: _run_cell(problem, "randomized", NS[-1], G))
    benchmark.extra_info["simulated_time"] = row.measured
    benchmark.extra_info["bound"] = row.bound
    assert row.correct
    assert row.measured >= 0.5 * row.bound


def bench_table1a_lac_nproc_log_star(benchmark):
    rows = benchmark(lac_nproc_rows)
    assert all(r.correct for r in rows)
    assert all(r.measured >= r.bound for r in rows)


def bench_table1a_parity_concurrent_reads_tight(benchmark):
    rows = benchmark(concurrent_reads_rows)
    assert all(r.correct for r in rows)
    verdict = summarise_cell(rows, tight=True, band=6.0)
    benchmark.extra_info["verdict"] = verdict
    assert verdict == "tight"


if __name__ == "__main__":
    main()
