"""Shared plumbing for the Table 1 benchmark harness.

Every bench pairs one Table 1 cell (a :class:`repro.lowerbounds.formulas.Bound`)
with the best matching Section 8 upper-bound algorithm, sweeps the input
size, and emits rows::

    problem | variant | n | params | measured | bound | ratio | verdict

``measured`` is the *simulated model cost* (time or rounds) of the verified
algorithm run; ``bound`` is the formula value with its hidden constant at 1.
The verdict summarises the shape check: ``dominates`` (Omega respected),
``tight`` (ratio band bounded — expected exactly for the paper's Theta
entries), or ``gap`` (upper and lower bounds genuinely apart, as the paper
says for e.g. randomized LAC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import render_table
from repro.analysis.fit import bounded_ratio, dominance_constant

__all__ = ["CellRow", "summarise_cell", "print_rows", "HEADERS"]

HEADERS = ["problem", "variant", "n", "params", "measured", "bound", "ratio", "verdict"]


@dataclass
class CellRow:
    problem: str
    variant: str
    n: int
    params: str
    measured: float
    bound: float
    correct: bool

    @property
    def ratio(self) -> float:
        return self.measured / self.bound if self.bound else float("inf")


def summarise_cell(rows: Sequence[CellRow], tight: bool, band: float = 6.0) -> str:
    """One verdict for all sweep points of a table cell."""
    if not all(r.correct for r in rows):
        return "WRONG-ANSWER"
    measured = [r.measured for r in rows]
    bounds = [r.bound for r in rows]
    c = dominance_constant(measured, bounds)
    if c < 0.1:
        return f"VIOLATION(c={c:.2f})"
    within, spread = bounded_ratio(measured, bounds, band=band)
    if within:
        return "tight" if tight else f"dominates(band={spread:.1f})"
    return f"gap(spread={spread:.1f})"


def print_rows(title: str, rows: Sequence[CellRow], verdicts: Dict[tuple, str]) -> str:
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.problem,
                r.variant,
                r.n,
                r.params,
                r.measured,
                round(r.bound, 2),
                round(r.ratio, 2),
                verdicts.get((r.problem, r.variant), "?"),
            ]
        )
    out = render_table(HEADERS, table_rows, title=title)
    print(out)
    return out
