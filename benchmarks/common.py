"""Shared plumbing for the Table 1 benchmark harness.

Every bench pairs one Table 1 cell (a :class:`repro.lowerbounds.formulas.Bound`)
with the best matching Section 8 upper-bound algorithm, sweeps the input
size, and emits rows::

    problem | variant | n | params | measured | bound | ratio | verdict

``measured`` is the *simulated model cost* (time or rounds) of the verified
algorithm run; ``bound`` is the formula value with its hidden constant at 1.
The verdict summarises the shape check: ``dominates`` (Omega respected),
``tight`` (ratio band bounded — expected exactly for the paper's Theta
entries), or ``gap`` (upper and lower bounds genuinely apart, as the paper
says for e.g. randomized LAC).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import render_table
from repro.analysis.fit import bounded_ratio, dominance_constant

__all__ = [
    "CellRow",
    "summarise_cell",
    "print_rows",
    "format_dominant",
    "HEADERS",
    "PerfRow",
    "print_perf_rows",
    "PERF_HEADERS",
    "ns_from_env",
    "sweep_cache_kwargs",
]

HEADERS = [
    "problem", "variant", "n", "params", "measured", "bound", "ratio",
    "dominant", "verdict",
]


def format_dominant(fractions: Optional[Dict[str, float]]) -> str:
    """Compact rendering of dominant-term fractions for table cells.

    ``{"kappa": 0.62, "g*m_rw": 0.38}`` -> ``"kappa 62%, g*m_rw 38%"``
    (largest share first; shares under 1% are dropped to keep rows short).
    """
    if not fractions:
        return "-"
    parts = [
        f"{term} {share:.0%}"
        for term, share in sorted(fractions.items(), key=lambda kv: -kv[1])
        if share >= 0.01
    ]
    return ", ".join(parts) if parts else "-"

PERF_HEADERS = ["path", "n", "ops", "seconds", "ops/sec", "speedup", "note"]


def ns_from_env(default: Sequence[int], env: str = "REPRO_BENCH_NS") -> List[int]:
    """Input-size sweep for a bench, overridable via an env var.

    ``REPRO_BENCH_NS=64,256`` shrinks any bench that opts in to a tiny grid
    — used by CI's smoke run so a Table 1 bench exercises the full pipeline
    without the full sweep.
    """
    raw = os.environ.get(env)
    if not raw:
        return list(default)
    ns = [int(tok) for tok in raw.replace(",", " ").split()]
    if not ns or any(n < 1 for n in ns):
        raise ValueError(f"{env} must list positive ints, got {raw!r}")
    return ns


def sweep_cache_kwargs(name: str) -> Dict[str, object]:
    """Result-persistence kwargs for a driver's ``parallel_sweep`` call.

    One switch point for all drivers: ``REPRO_STORE=<dir>`` routes
    outcomes into the shared content-addressed result store
    (:class:`repro.sched.store.ResultStore`), where they are also visible
    to ``python -m repro campaign`` runs of the same points; otherwise
    ``REPRO_BENCH_CACHE=<dir>`` keeps the legacy per-driver
    ``BENCH_<name>.json`` cache; otherwise nothing persists.
    """
    store_dir = os.environ.get("REPRO_STORE")
    if store_dir:
        from repro.sched.store import ResultStore

        return {"store": ResultStore(store_dir)}
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    if cache_dir:
        from repro.analysis.parallel_sweep import bench_cache_path

        return {"cache_path": bench_cache_path(name, root=cache_dir)}
    return {}


@dataclass
class PerfRow:
    """One wall-clock measurement of a phase-engine code path."""

    path: str
    n: int
    ops: int
    seconds: float
    note: str = ""

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.seconds if self.seconds > 0 else float("inf")


def print_perf_rows(title: str, rows: Sequence[PerfRow], baseline: Optional[str] = None) -> str:
    """Render ops/sec rows; ``speedup`` is relative to the named baseline path."""
    base_by_n: Dict[int, float] = {}
    if baseline is not None:
        for r in rows:
            if r.path == baseline:
                base_by_n[r.n] = r.ops_per_sec
    table_rows = []
    for r in rows:
        base = base_by_n.get(r.n)
        speedup = f"{r.ops_per_sec / base:.2f}x" if base else "-"
        table_rows.append(
            [r.path, r.n, r.ops, round(r.seconds, 4), round(r.ops_per_sec), speedup, r.note]
        )
    out = render_table(PERF_HEADERS, table_rows, title=title)
    print(out)
    return out


@dataclass
class CellRow:
    problem: str
    variant: str
    n: int
    params: str
    measured: float
    bound: float
    correct: bool
    #: Dominant-term rendering ("kappa 62%, g*m_rw 38%"); "-" when the run
    #: did not record cost provenance.  See repro.obs / format_dominant.
    dominant: str = "-"

    @property
    def ratio(self) -> float:
        return self.measured / self.bound if self.bound else float("inf")


def summarise_cell(rows: Sequence[CellRow], tight: bool, band: float = 6.0) -> str:
    """One verdict for all sweep points of a table cell."""
    if not all(r.correct for r in rows):
        return "WRONG-ANSWER"
    measured = [r.measured for r in rows]
    bounds = [r.bound for r in rows]
    c = dominance_constant(measured, bounds)
    if c < 0.1:
        return f"VIOLATION(c={c:.2f})"
    within, spread = bounded_ratio(measured, bounds, band=band)
    if within:
        return "tight" if tight else f"dominates(band={spread:.1f})"
    return f"gap(spread={spread:.1f})"


def print_rows(title: str, rows: Sequence[CellRow], verdicts: Dict[tuple, str]) -> str:
    table_rows = []
    for r in rows:
        table_rows.append(
            [
                r.problem,
                r.variant,
                r.n,
                r.params,
                r.measured,
                round(r.bound, 2),
                round(r.ratio, 2),
                r.dominant,
                verdicts.get((r.problem, r.variant), "?"),
            ]
        )
    out = render_table(HEADERS, table_rows, title=title)
    print(out)
    return out
