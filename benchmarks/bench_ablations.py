"""Experiments ABL-* — ablations of the design choices DESIGN.md calls out.

* ABL-fanin: reduction-tree fan-in per model.  The Section 8 choices
  (fan-in g on the QSM for contention-cheap combining, 2 on the s-QSM,
  L/g on the BSP) should each win on their own model.
* ABL-lac: dart throwing vs deterministic prefix compaction — time
  crossover as sparsity varies.
* ABL-queue: the same program charged under the QSM rule vs the s-QSM rule
  (queue vs symmetric-queue contention): quantifies how much of the model
  gap each workload feels.
"""

from __future__ import annotations

import pytest

from repro.algorithms.broadcast import broadcast_bsp
from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_tree
from repro.analysis import render_table
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.core.cost import qsm_phase_cost, sqsm_phase_cost
from repro.core.params import QSMParams as _QP, SQSMParams as _SP
from repro.problems import gen_bits, gen_sparse_array

N = 2**10


def fanin_ablation():
    """(model, fan_in) -> simulated time for OR (QSM) / parity (s-QSM) /
    broadcast (BSP)."""
    rows = []
    g = 16.0
    # Worst-case (all-ones) input: every tournament write actually lands, so
    # the contention term is exercised at its full fan-in.
    bits = gen_bits(N, density=1.0, seed=1)
    for k in (2, 4, 16, 64):
        t = or_tree_writes(QSM(QSMParams(g=g)), bits, fan_in=k).time
        rows.append(["QSM OR", f"fan-in {k}", t, "g" if k == int(g) else ""])
    for k in (2, 4, 16):
        t = parity_tree(SQSM(SQSMParams(g=g)), bits, fan_in=k).time
        rows.append(["s-QSM parity", f"fan-in {k}", t, "2" if k == 2 else ""])
    gb, Lb = 2.0, 32.0
    for k in (1, 4, 16, 64):
        t = broadcast_bsp(BSP(256, BSPParams(g=gb, L=Lb)), 0, fan_out=k).time
        rows.append(["BSP broadcast", f"fan-out {k}", t, "L/g" if k == int(Lb / gb) else ""])
    return rows


def lac_ablation():
    """Dart vs prefix across sparsity: dart wins when h << n."""
    rows = []
    g = 8.0
    for h_frac in (64, 16, 4, 1):
        h = max(1, N // h_frac)
        arr = gen_sparse_array(N, h, seed=h, exact=True)
        t_dart = lac_dart(QSM(QSMParams(g=g)), arr, h=h, seed=h).time
        arr2 = gen_sparse_array(N, h, seed=h, exact=True)
        t_prefix = lac_prefix(QSM(QSMParams(g=g)), arr2, h=h).time
        rows.append([f"h = n/{h_frac}", t_dart, t_prefix,
                     "dart" if t_dart < t_prefix else "prefix"])
    return rows


def model_ladder():
    """Parity and OR across the model ladder EREW -> CREW -> QRQW -> CRCW.

    The QRQW PRAM (= QSM with g = 1) is where the paper's queuing cost rule
    enters: concurrency is legal but *charged*.  The ladder shows the three
    regimes — forbidden (EREW/CREW write side), charged (QRQW), free (CRCW)
    — on identical inputs.
    """
    from repro.algorithms.pram_algos import or_crcw, parity_crcw, parity_erew
    from repro.core import PRAM, PRAMParams

    n = 1024
    bits = gen_bits(n, density=0.5, seed=6)
    rows = []
    rows.append(["parity", "EREW PRAM", parity_erew(PRAM(PRAMParams("EREW")), bits).time,
                 "Theta(log n)"])
    rows.append(["parity", "QRQW (QSM g=1)",
                 parity_blocks_qrqw(bits), "contention charged"])
    rows.append(["parity", "CRCW PRAM",
                 parity_crcw(PRAM(PRAMParams("CRCW", "common")), bits).time,
                 "Theta(log n/loglog n) [3]"])
    rows.append(["OR", "EREW PRAM (tree)", parity_erew(PRAM(PRAMParams("EREW")), [1] * n).time,
                 "Omega(log n)"])
    rows.append(["OR", "QRQW (QSM g=1)",
                 or_tree_writes(QSM(QSMParams(g=1)), bits).time, "max(1, kappa) per level"])
    rows.append(["OR", "CRCW PRAM", or_crcw(PRAM(PRAMParams("CRCW", "common")), bits).time,
                 "O(1)"])
    return rows


def parity_blocks_qrqw(bits):
    from repro.algorithms.parity import parity_blocks

    m = QSM(QSMParams(g=1))
    return parity_blocks(m, bits, block_size=4).time


def queue_rule_ablation():
    """Charge identical recorded phases under both cost rules."""
    workloads = {}
    for name, runner in (
        ("parity tree", lambda m: parity_tree(m, gen_bits(N, seed=2))),
        ("OR tournament (fan g)", lambda m: or_tree_writes(m, gen_bits(N, density=0.5, seed=3), fan_in=8)),
        ("LAC dart", lambda m: lac_dart(m, gen_sparse_array(N, N // 8, seed=4, exact=True), seed=4)),
    ):
        m = QSM(QSMParams(g=8))
        runner(m)
        qsm_cost = sum(qsm_phase_cost(rec, _QP(g=8)) for rec in m.history)
        sqsm_cost = sum(sqsm_phase_cost(rec, _SP(g=8)) for rec in m.history)
        workloads[name] = (qsm_cost, sqsm_cost)
    return workloads


def qsm_gd_interpolation():
    """Sweep d from 1 (QSM) to g (s-QSM) on the QSM(g,d) of Claim 2.2.

    The OR tournament re-tunes its fan-in to g/d, so its cost interpolates
    smoothly between the two endpoint models' costs.
    """
    from repro.core import QSMGD, QSMGDParams

    g = 16.0
    bits = gen_bits(N, density=1.0, seed=5)
    rows = []
    for d in (1.0, 2.0, 4.0, 8.0, 16.0):
        m = QSMGD(QSMGDParams(g=g, d=d))
        r = or_tree_writes(m, bits)
        tag = "QSM" if d == 1.0 else ("s-QSM" if d == g else "")
        rows.append([f"d={d:g}", r.extra["fan_in"], r.time, tag])
    return rows


def main() -> None:
    print(render_table(
        ["workload", "choice", "simulated time", "paper's choice"],
        fanin_ablation(),
        title="ABL-fanin: tree fan-in per model",
    ))
    print()
    print(render_table(
        ["memory gap", "fan-in g/d", "OR time (all-ones)", "endpoint"],
        qsm_gd_interpolation(),
        title="ABL-qsmgd: QSM(g,d) interpolation between QSM (d=1) and s-QSM (d=g), g=16",
    ))
    print()
    print(render_table(
        ["sparsity", "dart time", "prefix time", "winner"],
        lac_ablation(),
        title="ABL-lac: randomized dart throwing vs deterministic prefix compaction",
    ))
    print()
    print(render_table(
        ["problem", "model", "steps / time", "known bound"],
        model_ladder(),
        title="ABL-ladder: the PRAM-to-queuing model ladder (n=1024)",
    ))
    print()
    rows = [
        [name, q, s, round(s / q, 2)] for name, (q, s) in queue_rule_ablation().items()
    ]
    print(render_table(
        ["workload", "QSM rule cost", "s-QSM rule cost", "s-QSM/QSM"],
        rows,
        title="ABL-queue: queue vs symmetric-queue charging of identical phases",
    ))


# --- pytest-benchmark targets ------------------------------------------------

def bench_abl_fanin(benchmark):
    rows = benchmark(fanin_ablation)
    qsm_rows = {r[1]: r[2] for r in rows if r[0] == "QSM OR"}
    # Paper's choice (fan-in g = 16) is the worst-case optimum on the QSM.
    assert qsm_rows["fan-in 16"] <= min(qsm_rows.values())
    sqsm_rows = {r[1]: r[2] for r in rows if r[0] == "s-QSM parity"}
    # Fan-in 2 is within a constant of the best (the true constant-level
    # optimum is fan-in ~e; 'fan-in O(1)' is the paper-level choice).
    assert sqsm_rows["fan-in 2"] <= 1.5 * min(sqsm_rows.values())
    assert sqsm_rows["fan-in 2"] < sqsm_rows["fan-in 16"]


def bench_abl_lac_crossover(benchmark):
    rows = benchmark(lac_ablation)
    # Sparse: dart wins; the advantage shrinks as h -> n.
    assert rows[0][-1] == "dart"
    advantages = [r[2] / r[1] for r in rows]
    assert advantages[0] >= advantages[-1]


def bench_abl_qsm_gd_interpolation(benchmark):
    rows = benchmark(qsm_gd_interpolation)
    times = [r[2] for r in rows]
    # Monotone in d: more expensive memory gap never speeds things up.
    assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
    # Endpoints match the dedicated models.
    bits = gen_bits(N, density=1.0, seed=5)
    t_qsm = or_tree_writes(QSM(QSMParams(g=16)), bits).time
    t_sqsm = or_tree_writes(SQSM(SQSMParams(g=16)), bits).time
    assert times[0] == t_qsm
    assert times[-1] == t_sqsm


def bench_abl_model_ladder(benchmark):
    rows = benchmark(model_ladder)
    by = {(r[0], r[1]): r[2] for r in rows}
    # Parity: CRCW < EREW (Beame-Hastad separation); QRQW sits in between
    # or above CRCW (it pays contention).
    assert by[("parity", "CRCW PRAM")] < by[("parity", "EREW PRAM")]
    assert by[("parity", "QRQW (QSM g=1)")] >= by[("parity", "CRCW PRAM")]
    # OR: constant on CRCW, logarithmic elsewhere.
    assert by[("OR", "CRCW PRAM")] <= 2.0
    assert by[("OR", "QRQW (QSM g=1)")] > by[("OR", "CRCW PRAM")]


def bench_abl_queue_rule(benchmark):
    workloads = benchmark(queue_rule_ablation)
    for name, (q, s) in workloads.items():
        assert s >= q  # symmetric charging never cheaper
    # Contention-heavy OR feels the rule change more than contention-1 parity.
    ratio_parity = workloads["parity tree"][1] / workloads["parity tree"][0]
    ratio_or = workloads["OR tournament (fan g)"][1] / workloads["OR tournament (fan g)"][0]
    assert ratio_or >= ratio_parity


if __name__ == "__main__":
    main()
