"""Experiment REL — "Parity and related problems" (Table 1 row labels).

Table 1's parity rows are titled "Parity and related problems" because the
parity lower bounds transfer to list ranking and sorting through the
size-preserving reductions of Section 3.  This bench runs the *related*
problems' algorithms and checks that their measured costs dominate the
parity bound of the matching model — the executable content of the
transfer — and that pointer-jumping list ranking is in fact Theta(g log n)
on the s-QSM (it matches the transferred tight parity bound).
"""

from __future__ import annotations

import pytest

from benchmarks.common import CellRow, print_rows, summarise_cell
from repro.algorithms.list_ranking import list_rank
from repro.algorithms.reductions import (
    parity_via_list_ranking,
    parity_via_sorting,
    parity_via_sorting_bsp,
)
from repro.algorithms.sorting import sample_sort_bsp, sort_shared
from repro.core import BSP, QSM, SQSM, BSPParams, QSMParams, SQSMParams
from repro.lowerbounds.formulas import (
    bsp_parity_det_time,
    qsm_parity_det_time,
    sqsm_parity_det_time,
)
from repro.problems import (
    gen_bits,
    gen_list,
    gen_sort_input,
    verify_list_ranks,
    verify_parity,
    verify_sorted,
)

NS = [2**8, 2**10, 2**12]
G, L, P = 4.0, 16.0, 64


def list_ranking_rows():
    rows = []
    for n in NS:
        next_ptrs, _ = gen_list(n, seed=n)
        m = SQSM(SQSMParams(g=G))
        r = list_rank(m, next_ptrs)
        rows.append(
            CellRow(
                "ListRanking", "s-QSM", n, f"g={G:g}", r.time,
                sqsm_parity_det_time(n, G), verify_list_ranks(next_ptrs, r.value),
            )
        )
    return rows


def sorting_rows():
    rows = []
    for n in NS:
        vals = gen_sort_input(n, seed=n)
        m = QSM(QSMParams(g=G))
        r = sort_shared(m, vals)
        rows.append(
            CellRow(
                "Sorting", "QSM", n, f"g={G:g}", r.time,
                qsm_parity_det_time(n, G), verify_sorted(vals, r.value),
            )
        )
        b = BSP(P, BSPParams(g=G, L=L))
        vals2 = gen_sort_input(n, seed=n + 1)
        r2 = sample_sort_bsp(b, vals2)
        rows.append(
            CellRow(
                "Sorting", "BSP", n, f"p={P},g={G:g},L={L:g}", r2.time,
                bsp_parity_det_time(n, G, L, P), verify_sorted(vals2, r2.value),
            )
        )
    return rows


def reduction_rows():
    """Run parity *through* the reductions: costs must still dominate."""
    rows = []
    for n in NS:
        bits = gen_bits(n, seed=n)
        m = QSM(QSMParams(g=G))
        r = parity_via_list_ranking(m, bits)
        rows.append(
            CellRow(
                "Parity->ListRank", "QSM", n, f"g={G:g}", r.time,
                qsm_parity_det_time(n, G), verify_parity(bits, r.value),
            )
        )
        m2 = QSM(QSMParams(g=G))
        r2 = parity_via_sorting(m2, bits)
        rows.append(
            CellRow(
                "Parity->Sorting", "QSM", n, f"g={G:g}", r2.time,
                qsm_parity_det_time(n, G), verify_parity(bits, r2.value),
            )
        )
        b = BSP(min(P, n), BSPParams(g=G, L=L))
        r3 = parity_via_sorting_bsp(b, bits)
        rows.append(
            CellRow(
                "Parity->Sorting", "BSP", n, f"p={P},g={G:g}", r3.time,
                bsp_parity_det_time(n, G, L, min(P, n)), verify_parity(bits, r3.value),
            )
        )
    return rows


def collect_rows():
    return list_ranking_rows() + sorting_rows() + reduction_rows()


def main() -> None:
    rows = collect_rows()
    verdicts = {}
    for key in {(r.problem, r.variant) for r in rows}:
        cell = [r for r in rows if (r.problem, r.variant) == key]
        tight = key == ("ListRanking", "s-QSM")
        verdicts[key] = summarise_cell(cell, tight=tight, band=8.0)
    print_rows(
        '"Parity and related problems": list ranking & sorting vs the '
        "transferred parity bounds",
        sorted(rows, key=lambda r: (r.problem, r.variant, r.n)),
        verdicts,
    )


# --- pytest-benchmark targets ------------------------------------------------

def bench_rel_list_ranking_theta(benchmark):
    rows = benchmark(list_ranking_rows)
    assert all(r.correct for r in rows)
    verdict = summarise_cell(rows, tight=True, band=6.0)
    benchmark.extra_info["verdict"] = verdict
    assert verdict == "tight"  # pointer jumping matches the transferred bound


def bench_rel_sorting_dominates(benchmark):
    rows = benchmark(sorting_rows)
    assert all(r.correct for r in rows)
    assert all(r.measured >= 0.5 * r.bound for r in rows)


def bench_rel_reductions_dominate(benchmark):
    rows = benchmark(reduction_rows)
    assert all(r.correct for r in rows)
    assert all(r.measured >= 0.5 * r.bound for r in rows)


if __name__ == "__main__":
    main()
