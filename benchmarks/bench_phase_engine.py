"""Experiment PERF — phase-engine throughput and the parallel sweep runner.

Two measurements back the "fast as the hardware allows" roadmap item:

1. **Scalar vs block phase operations.**  The same access pattern (each of
   ``PROCS`` processors touching a contiguous chunk of cells, contention 1)
   is issued once through per-operation ``ph.read``/``ph.write`` calls and
   once through the bulk ``ph.read_block``/``ph.write_block`` API, plus the
   BSP analogue (``ss.send`` vs ``ss.send_block``).  The headline ops/sec
   times the *operation-issue* path — the code the block API replaces.
   Commit time is reported separately: both paths produce an identical
   pending phase, so the commit does identical work either way and folding
   it into the ratio would only dilute the measurement toward 1x.
2. **Serial vs parallel sweep.**  A Table 1a parity grid is run through
   ``sweep()`` and ``parallel_sweep()`` and the outcomes are checked for
   exact equality — the parallel runner must be a drop-in, whatever the
   job count.  Wall-clock for both is printed (on multi-core hosts the
   parallel runner wins; on one core it only demonstrates isolation).

Run as ``python -m repro perf`` (honours ``--jobs``), or under
``pytest benchmarks/`` for the asserting targets.
"""

from __future__ import annotations

import time
from typing import Dict, List

from typing import Tuple

from benchmarks.common import PerfRow, ns_from_env, print_perf_rows
from repro.algorithms.parity import parity_blocks
from repro.analysis.parallel_sweep import default_jobs, parallel_sweep
from repro.analysis.sweep import sweep
from repro.core import BSP, BSPParams, QSM, QSMParams
from repro.lowerbounds.formulas import bounds_for
from repro.problems import gen_bits, verify_parity

N_OPS = 10**5
PROCS = 100


# --- scalar vs block micro-benchmarks ---------------------------------------

def _chunks(n: int, procs: int) -> List[range]:
    per = -(-n // procs)
    return [range(p * per, min((p + 1) * per, n)) for p in range(procs) if p * per < n]


def time_scalar_reads(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    chunks = _chunks(n, procs)
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        read = ph.read
        for proc, chunk in enumerate(chunks):
            for addr in chunk:
                read(proc, addr)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_block_reads(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    chunks = _chunks(n, procs)
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        for proc, chunk in enumerate(chunks):
            ph.read_block(proc, chunk)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_scalar_writes(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    payload = [[(addr, addr) for addr in chunk] for chunk in _chunks(n, procs)]
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        write = ph.write
        for proc, items in enumerate(payload):
            for addr, value in items:
                write(proc, addr, value)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_block_writes(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    payload = [[(addr, addr) for addr in chunk] for chunk in _chunks(n, procs)]
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        for proc, items in enumerate(payload):
            ph.write_block(proc, items)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_scalar_sends(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    bsp = BSP(procs, BSPParams(g=1, L=1))
    per = -(-n // procs)
    payload = [[((src + 1) % procs, i) for i in range(per)] for src in range(procs)]
    ss = bsp.superstep()
    t0 = time.perf_counter()
    with ss:
        send = ss.send
        for src, msgs in enumerate(payload):
            for dst, item in msgs:
                send(src, dst, item)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_block_sends(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    bsp = BSP(procs, BSPParams(g=1, L=1))
    per = -(-n // procs)
    payload = [[((src + 1) % procs, i) for i in range(per)] for src in range(procs)]
    ss = bsp.superstep()
    t0 = time.perf_counter()
    with ss:
        for src, msgs in enumerate(payload):
            ss.send_block(src, msgs)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


_PAIRS = [
    ("read/scalar", "read/block", time_scalar_reads, time_block_reads),
    ("write/scalar", "write/block", time_scalar_writes, time_block_writes),
    ("send/scalar", "send/block", time_scalar_sends, time_block_sends),
]


def _best(fn, n: int, repeats: int) -> Tuple[float, float]:
    """Best-of-``repeats`` (issue, commit) timings, each stage independently."""
    samples = [fn(n) for _ in range(repeats)]
    return min(s[0] for s in samples), min(s[1] for s in samples)


def engine_rows(n: int = N_OPS, repeats: int = 3) -> List[PerfRow]:
    """Best-of-``repeats`` issue-path ops/sec rows for every scalar/block pair.

    Commit time is carried in each row's ``note`` — it is the same work for
    both paths (the pending phase they build is identical).
    """
    rows: List[PerfRow] = []
    for scalar_name, block_name, scalar_fn, block_fn in _PAIRS:
        scalar_issue, scalar_commit = _best(scalar_fn, n, repeats)
        block_issue, block_commit = _best(block_fn, n, repeats)
        rows.append(
            PerfRow(scalar_name, n, n, scalar_issue, note=f"+{scalar_commit:.3f}s commit")
        )
        rows.append(
            PerfRow(block_name, n, n, block_issue, note=f"+{block_commit:.3f}s commit")
        )
    return rows


def block_speedup(kind: str = "read", n: int = N_OPS, repeats: int = 3) -> float:
    """Block-path issue ops/sec over scalar-path issue ops/sec for one op kind."""
    for scalar_name, _, scalar_fn, block_fn in _PAIRS:
        if scalar_name.startswith(kind):
            scalar_issue, _ = _best(scalar_fn, n, repeats)
            block_issue, _ = _best(block_fn, n, repeats)
            return scalar_issue / block_issue
    raise ValueError(f"unknown op kind {kind!r}")


# --- serial vs parallel sweep over a Table 1 grid ---------------------------

def run_qsm_parity_point(n: int, g: float) -> Dict[str, object]:
    """One Table 1a grid point: deterministic parity on the QSM (picklable)."""
    bound_entry = bounds_for(table="1a", problem="Parity", variant="deterministic")[0]
    m = QSM(QSMParams(g=g))
    bits = gen_bits(n, seed=n)
    r = parity_blocks(m, bits)
    return {
        "measured": r.time,
        "correct": verify_parity(bits, r.value),
        "bound": bound_entry.fn(n, g),
        "phases": r.phases,
    }


def sweep_grid() -> Dict[str, List]:
    return {"n": ns_from_env([2**8, 2**10, 2**12]), "g": [2.0, 8.0]}


def compare_sweeps(jobs: int = None) -> Dict[str, object]:
    """Run the grid serially and in parallel; report timings and equality."""
    grid = sweep_grid()
    jobs = default_jobs() if jobs is None else jobs
    t0 = time.perf_counter()
    serial = sweep(grid, run_qsm_parity_point)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = parallel_sweep(grid, run_qsm_parity_point, jobs=jobs)
    t_parallel = time.perf_counter() - t0
    return {
        "serial": serial,
        "parallel": parallel,
        "t_serial": t_serial,
        "t_parallel": t_parallel,
        "jobs": jobs,
        "identical": serial == parallel,
    }


def main() -> None:
    rows = engine_rows()
    for kind in ("read", "write", "send"):
        print_perf_rows(
            f"Phase engine: {kind} path, scalar vs block (n={N_OPS})",
            [r for r in rows if r.path.startswith(kind)],
            baseline=f"{kind}/scalar",
        )
        print()
    cmp = compare_sweeps()
    print(
        f"Table 1a parity grid ({len(cmp['serial'])} points): "
        f"serial sweep {cmp['t_serial']:.2f}s, "
        f"parallel_sweep --jobs {cmp['jobs']} {cmp['t_parallel']:.2f}s, "
        f"results identical: {cmp['identical']}"
    )
    if not cmp["identical"]:
        raise SystemExit("parallel_sweep diverged from serial sweep")


# --- pytest-benchmark targets ------------------------------------------------

def bench_block_read_speedup(benchmark):
    speedup = benchmark(lambda: block_speedup("read"))
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 2.0, f"block reads only {speedup:.2f}x scalar"


def bench_block_write_speedup(benchmark):
    speedup = benchmark(lambda: block_speedup("write"))
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 2.0, f"block writes only {speedup:.2f}x scalar"


def bench_block_send_speedup(benchmark):
    speedup = benchmark(lambda: block_speedup("send"))
    benchmark.extra_info["speedup"] = speedup
    # Lower floor than the shared-memory paths: a BSP send is already cheap
    # (no conflict checks), so there is less scalar overhead to amortise.
    assert speedup >= 1.5, f"block sends only {speedup:.2f}x scalar"


def bench_parallel_sweep_is_drop_in(benchmark):
    cmp = benchmark(lambda: compare_sweeps(jobs=2))
    assert cmp["identical"]
    assert all(p.correct for p in cmp["parallel"])


if __name__ == "__main__":
    main()
