"""Experiment PERF — phase-engine throughput and the parallel sweep runner.

Two measurements back the "fast as the hardware allows" roadmap item:

1. **Scalar vs block phase operations.**  The same access pattern (each of
   ``PROCS`` processors touching a contiguous chunk of cells, contention 1)
   is issued once through per-operation ``ph.read``/``ph.write`` calls and
   once through the bulk ``ph.read_block``/``ph.write_block`` API, plus the
   BSP analogue (``ss.send`` vs ``ss.send_block``).  The headline ops/sec
   times the *operation-issue* path — the code the block API replaces.
   Commit time is reported separately: both paths produce an identical
   pending phase, so the commit does identical work either way and folding
   it into the ratio would only dilute the measurement toward 1x.
2. **Serial vs parallel sweep.**  A Table 1a parity grid is run through
   ``sweep()`` and ``parallel_sweep()`` and the outcomes are checked for
   exact equality — the parallel runner must be a drop-in, whatever the
   job count.  Wall-clock for both is printed (on multi-core hosts the
   parallel runner wins; on one core it only demonstrates isolation).

Run as ``python -m repro perf`` (honours ``--jobs``), or under
``pytest benchmarks/`` for the asserting targets.
"""

from __future__ import annotations

import time
from typing import Dict, List

from typing import Tuple

import pytest

from benchmarks.common import PerfRow, ns_from_env, print_perf_rows
from repro.algorithms.parity import parity_blocks
from repro.analysis.parallel_sweep import default_jobs, parallel_sweep
from repro.analysis.sweep import sweep
from repro.core import BSP, BSPParams, QSM, QSMParams, have_numpy
from repro.lowerbounds.formulas import bounds_for
from repro.problems import gen_bits, verify_parity

N_OPS = 10**5
PROCS = 100


# --- scalar vs block micro-benchmarks ---------------------------------------

def _chunks(n: int, procs: int) -> List[range]:
    per = -(-n // procs)
    return [range(p * per, min((p + 1) * per, n)) for p in range(procs) if p * per < n]


def time_scalar_reads(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    chunks = _chunks(n, procs)
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        read = ph.read
        for proc, chunk in enumerate(chunks):
            for addr in chunk:
                read(proc, addr)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_block_reads(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    chunks = _chunks(n, procs)
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        for proc, chunk in enumerate(chunks):
            ph.read_block(proc, chunk)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_scalar_writes(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    payload = [[(addr, addr) for addr in chunk] for chunk in _chunks(n, procs)]
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        write = ph.write
        for proc, items in enumerate(payload):
            for addr, value in items:
                write(proc, addr, value)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_block_writes(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    m = QSM(QSMParams(g=2), seed=0)
    payload = [[(addr, addr) for addr in chunk] for chunk in _chunks(n, procs)]
    ph = m.phase()
    t0 = time.perf_counter()
    with ph:
        for proc, items in enumerate(payload):
            ph.write_block(proc, items)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_scalar_sends(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    bsp = BSP(procs, BSPParams(g=1, L=1))
    per = -(-n // procs)
    payload = [[((src + 1) % procs, i) for i in range(per)] for src in range(procs)]
    ss = bsp.superstep()
    t0 = time.perf_counter()
    with ss:
        send = ss.send
        for src, msgs in enumerate(payload):
            for dst, item in msgs:
                send(src, dst, item)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


def time_block_sends(n: int = N_OPS, procs: int = PROCS) -> Tuple[float, float]:
    bsp = BSP(procs, BSPParams(g=1, L=1))
    per = -(-n // procs)
    payload = [[((src + 1) % procs, i) for i in range(per)] for src in range(procs)]
    ss = bsp.superstep()
    t0 = time.perf_counter()
    with ss:
        for src, msgs in enumerate(payload):
            ss.send_block(src, msgs)
        t1 = time.perf_counter()
    return t1 - t0, time.perf_counter() - t1


_PAIRS = [
    ("read/scalar", "read/block", time_scalar_reads, time_block_reads),
    ("write/scalar", "write/block", time_scalar_writes, time_block_writes),
    ("send/scalar", "send/block", time_scalar_sends, time_block_sends),
]


def _best(fn, n: int, repeats: int) -> Tuple[float, float]:
    """Best-of-``repeats`` (issue, commit) timings, each stage independently."""
    samples = [fn(n) for _ in range(repeats)]
    return min(s[0] for s in samples), min(s[1] for s in samples)


def engine_rows(n: int = N_OPS, repeats: int = 3) -> List[PerfRow]:
    """Best-of-``repeats`` issue-path ops/sec rows for every scalar/block pair.

    Commit time is carried in each row's ``note`` — it is the same work for
    both paths (the pending phase they build is identical).
    """
    rows: List[PerfRow] = []
    for scalar_name, block_name, scalar_fn, block_fn in _PAIRS:
        scalar_issue, scalar_commit = _best(scalar_fn, n, repeats)
        block_issue, block_commit = _best(block_fn, n, repeats)
        rows.append(
            PerfRow(scalar_name, n, n, scalar_issue, note=f"+{scalar_commit:.3f}s commit")
        )
        rows.append(
            PerfRow(block_name, n, n, block_issue, note=f"+{block_commit:.3f}s commit")
        )
    return rows


def block_speedup(kind: str = "read", n: int = N_OPS, repeats: int = 3) -> float:
    """Block-path issue ops/sec over scalar-path issue ops/sec for one op kind."""
    for scalar_name, _, scalar_fn, block_fn in _PAIRS:
        if scalar_name.startswith(kind):
            scalar_issue, _ = _best(scalar_fn, n, repeats)
            block_issue, _ = _best(block_fn, n, repeats)
            return scalar_issue / block_issue
    raise ValueError(f"unknown op kind {kind!r}")


# --- serial vs parallel sweep over a Table 1 grid ---------------------------

def run_qsm_parity_point(n: int, g: float) -> Dict[str, object]:
    """One Table 1a grid point: deterministic parity on the QSM (picklable)."""
    bound_entry = bounds_for(table="1a", problem="Parity", variant="deterministic")[0]
    m = QSM(QSMParams(g=g))
    bits = gen_bits(n, seed=n)
    r = parity_blocks(m, bits)
    return {
        "measured": r.time,
        "correct": verify_parity(bits, r.value),
        "bound": bound_entry.fn(n, g),
        "phases": r.phases,
    }


def sweep_grid() -> Dict[str, List]:
    return {"n": ns_from_env([2**8, 2**10, 2**12]), "g": [2.0, 8.0]}


def compare_sweeps(jobs: int = None) -> Dict[str, object]:
    """Run the grid serially and in parallel; report timings and equality."""
    grid = sweep_grid()
    jobs = default_jobs() if jobs is None else jobs
    t0 = time.perf_counter()
    serial = sweep(grid, run_qsm_parity_point)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = parallel_sweep(grid, run_qsm_parity_point, jobs=jobs)
    t_parallel = time.perf_counter() - t0
    return {
        "serial": serial,
        "parallel": parallel,
        "t_serial": t_serial,
        "t_parallel": t_parallel,
        "jobs": jobs,
        "identical": serial == parallel,
    }


# --- reference vs vector engine: point throughput ----------------------------

#: Processor count for the engine A/B.  Fewer procs than the issue-path
#: micro-benchmarks => larger per-proc blocks (2000 cells at n=10^5), the
#: regime the vector engine exists for (Table 1 sweeps at n ~ 10^5..10^6).
POINT_PROCS = 50


def time_point(engine: str = "reference", path: str = "scalar",
               n: int = N_OPS, procs: int = POINT_PROCS) -> float:
    """End-to-end seconds for one write phase + one read phase of ``n`` cells.

    Unlike the issue-path micro-benchmarks above, this includes commit and
    read resolution — it is the wall cost of executing one "point" of
    simulated work on the selected engine.  ``path="scalar"`` issues one
    API call per cell (the canonical reference-engine style);
    ``path="block"`` issues one bulk call per processor chunk (the style
    the vector engine turns into array operations).
    """
    m = QSM(QSMParams(g=2), seed=0, engine=engine)
    chunks = _chunks(n, procs)
    # Payloads are prepared outside the clock: the measurement is the
    # engine executing the phase, not the harness fabricating test data.
    # The vector engine is fed addresses/values in its native array form.
    if engine == "vector":
        import numpy as np

        payloads = [np.arange(c.start, c.stop) for c in chunks]
    else:
        payloads = [list(c) for c in chunks]
    t0 = time.perf_counter()
    with m.phase() as ph:
        if path == "scalar":
            write = ph.write
            for proc, chunk in enumerate(chunks):
                for addr in chunk:
                    write(proc, addr, addr)
        else:
            for proc, chunk in enumerate(chunks):
                ph.write_cols(proc, chunk, payloads[proc])
    handles: List = []
    with m.phase() as ph:
        if path == "scalar":
            read = ph.read
            for proc, chunk in enumerate(chunks):
                for addr in chunk:
                    handles.append(read(proc, addr))
        else:
            for proc, chunk in enumerate(chunks):
                handles.append(ph.read_block(proc, chunk))
    # Consume every delivered value so resolution cost is inside the clock.
    acc = 0
    if path == "scalar":
        for h in handles:
            acc += h.value
    else:
        for h in handles:
            arr = getattr(h, "array", None)
            acc += int(arr.sum()) if arr is not None else sum(h.values)
    elapsed = time.perf_counter() - t0
    assert acc == n * (n - 1) // 2, "engine delivered wrong values"
    return elapsed


def engine_point_rows(n: int = N_OPS, repeats: int = 3) -> List[PerfRow]:
    """Reference-scalar / reference-block / vector-block point timings."""
    variants = [("reference", "scalar"), ("reference", "block")]
    if have_numpy():
        variants.append(("vector", "block"))
    rows = []
    for engine, path in variants:
        seconds = min(time_point(engine, path, n) for _ in range(repeats))
        rows.append(PerfRow(f"point/{engine}-{path}", n, 2 * n, seconds))
    return rows


def vector_speedup(n: int = N_OPS, repeats: int = 3) -> Dict[str, float]:
    """Vector-engine point throughput over the reference engine's.

    ``vs_reference_scalar`` is the headline (the per-op execution the
    vector engine replaces); ``vs_reference_block`` isolates the engine
    swap with the API held fixed.  Requires numpy.
    """
    scalar = min(time_point("reference", "scalar", n) for _ in range(repeats))
    block = min(time_point("reference", "block", n) for _ in range(repeats))
    vector = min(time_point("vector", "block", n) for _ in range(repeats))
    return {
        "vs_reference_scalar": scalar / vector,
        "vs_reference_block": block / vector,
    }


# --- Table 1 at scale: the parity fan-in point, swept over both engines ------

FANIN_BLOCK = 32


def _block_parity(handle) -> int:
    arr = getattr(handle, "array", None)
    if arr is not None:
        return int(arr.sum()) & 1
    return sum(handle.values) & 1


def _fanin_parity(machine: QSM, bits, b: int = FANIN_BLOCK) -> int:
    """Parity by b-ary fan-in using only block reads — O(g·b·log_b n) time.

    Each level: processor ``j`` block-reads its group of ``<= b`` cells
    (contention 1, ``m_rw = b``), then scalar-writes the group parity
    (``m_rw = 1``).  Per-op issue cost is O(n/b) Python calls per level,
    so the simulation itself stays fast enough to sweep to n ~ 10^6 on
    the vector engine.
    """
    machine.load(bits, base=0)
    base, size = 0, len(bits)
    out = size
    while size > 1:
        groups = -(-size // b)
        with machine.phase() as ph:
            handles = [
                ph.read_block(j, range(base + j * b, base + min((j + 1) * b, size)))
                for j in range(groups)
            ]
        with machine.phase() as ph:
            for j, h in enumerate(handles):
                ph.write(j, out + j, _block_parity(h))
        base, size = out, groups
        out = base + groups
    return machine.peek(base)


def run_parity_fanin_point(n: int, g: float, engine: str) -> Dict[str, object]:
    """One large-n Table 1a parity point on the selected engine (picklable)."""
    bound_entry = bounds_for(table="1a", problem="Parity", variant="deterministic")[0]
    m = QSM(QSMParams(g=g), engine=engine)
    bits = gen_bits(n, seed=n)
    value = _fanin_parity(m, bits)
    return {
        "measured": m.time,
        "correct": verify_parity(bits, value),
        "bound": bound_entry.fn(n, g),
        "phases": m.phase_count,
    }


def table1_ns() -> List[int]:
    """Large-n sweep sizes: {10^4, 10^5} by default, env-extendable to 10^6.

    A dedicated env var (not ``REPRO_BENCH_NS``) so CI smoke grids don't
    silently change the point keys ``bench check`` diffs against the
    committed baseline.
    """
    return ns_from_env([10**4, 10**5], env="REPRO_PHASE_ENGINE_NS")


def table1_engine_sweep(ns=None, jobs: int = None) -> List:
    """The parity fan-in grid x both engines, via the ``engine=`` sweep axis."""
    engines = ("reference", "vector") if have_numpy() else ("reference",)
    return parallel_sweep(
        {"n": ns if ns is not None else table1_ns(), "g": [2.0]},
        run_parity_fanin_point,
        jobs=jobs,
        engine=engines,
    )


# --- the committed baseline payload (BENCH_phase_engine.json) ----------------

def collect(jobs: int = None) -> Dict[str, object]:
    """Measure the engine A/B and the large-n Table 1 sweep for ``bench check``.

    Schema (see ``repro.obs.regress``): per-engine wall numbers live under
    ``engines.<name>.seconds`` / ``.throughput`` (informational — never
    gate), the reference/vector ratios under ``speedup`` (gated at the
    loose wall tolerance), and the large-n parity points under ``table1``
    (simulated costs — deterministic, gated at 1%).
    """
    jobs = default_jobs() if jobs is None else jobs
    engines: Dict[str, Dict[str, float]] = {}
    for engine, path in [("reference", "scalar"), ("reference", "block"),
                         ("vector", "block")]:
        if engine == "vector" and not have_numpy():
            continue
        seconds = min(time_point(engine, path) for _ in range(3))
        engines[f"{engine}-{path}"] = {
            "seconds": seconds,
            "throughput": 2 * N_OPS / seconds,
        }
    payload: Dict[str, object] = {
        "n": N_OPS,
        "vector_backend": have_numpy(),
        "engines": engines,
    }
    if have_numpy():
        payload["speedup"] = {
            "vector_vs_reference_scalar": (
                engines["reference-scalar"]["seconds"]
                / engines["vector-block"]["seconds"]
            ),
            "vector_vs_reference_block": (
                engines["reference-block"]["seconds"]
                / engines["vector-block"]["seconds"]
            ),
        }
    points = table1_engine_sweep(jobs=jobs)
    table1: Dict[str, Dict[str, object]] = {}
    for p in points:
        key = "engine={engine},g={g:g},n={n}".format(**p.params)
        table1[key] = {
            "measured": p.measured,
            "correct": p.correct,
            "bound": p.bound,
        }
    payload["table1"] = table1
    # Bit-equality across engines, visible in the baseline: every vector
    # point's simulated cost must equal its reference twin's.
    by_n: Dict[tuple, Dict[str, float]] = {}
    for p in points:
        by_n.setdefault((p.params["n"], p.params["g"]), {})[p.params["engine"]] = p.measured
    payload["engines_agree"] = all(
        len(set(v.values())) == 1 for v in by_n.values()
    )
    return payload


def write_bench_json(payload: Dict[str, object], path: str = None) -> str:
    """Persist the measurement to ``BENCH_phase_engine.json``; returns the path."""
    import json
    import os

    if path is None:
        root = os.environ.get("REPRO_BENCH_CACHE") or "."
        path = os.path.join(root, "BENCH_phase_engine.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main() -> None:
    rows = engine_rows()
    for kind in ("read", "write", "send"):
        print_perf_rows(
            f"Phase engine: {kind} path, scalar vs block (n={N_OPS})",
            [r for r in rows if r.path.startswith(kind)],
            baseline=f"{kind}/scalar",
        )
        print()
    cmp = compare_sweeps()
    print(
        f"Table 1a parity grid ({len(cmp['serial'])} points): "
        f"serial sweep {cmp['t_serial']:.2f}s, "
        f"parallel_sweep --jobs {cmp['jobs']} {cmp['t_parallel']:.2f}s, "
        f"results identical: {cmp['identical']}"
    )
    if not cmp["identical"]:
        raise SystemExit("parallel_sweep diverged from serial sweep")
    print()
    print_perf_rows(
        f"Engine A/B: end-to-end point throughput (n={N_OPS})",
        engine_point_rows(),
        baseline="point/reference-scalar",
    )
    if have_numpy():
        speedup = vector_speedup()
        print(
            f"vector engine: {speedup['vs_reference_scalar']:.0f}x the "
            f"reference scalar path, {speedup['vs_reference_block']:.0f}x "
            f"the reference block path"
        )
    print()
    t0 = time.perf_counter()
    points = table1_engine_sweep()
    print(
        f"Table 1a parity fan-in at scale (n in {table1_ns()}, both engines): "
        f"{len(points)} points in {time.perf_counter() - t0:.2f}s, "
        f"all correct: {all(p.correct for p in points)}"
    )
    for p in points:
        print(
            f"  n={p.params['n']:>8} engine={p.params['engine']:<9} "
            f"measured={p.measured:.1f} bound={p.bound:.1f} ratio={p.ratio:.2f}"
        )


# --- pytest-benchmark targets ------------------------------------------------

def bench_block_read_speedup(benchmark):
    speedup = benchmark(lambda: block_speedup("read"))
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 2.0, f"block reads only {speedup:.2f}x scalar"


def bench_block_write_speedup(benchmark):
    speedup = benchmark(lambda: block_speedup("write"))
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 2.0, f"block writes only {speedup:.2f}x scalar"


def bench_block_send_speedup(benchmark):
    speedup = benchmark(lambda: block_speedup("send"))
    benchmark.extra_info["speedup"] = speedup
    # Lower floor than the shared-memory paths: a BSP send is already cheap
    # (no conflict checks), so there is less scalar overhead to amortise.
    assert speedup >= 1.5, f"block sends only {speedup:.2f}x scalar"


def bench_parallel_sweep_is_drop_in(benchmark):
    cmp = benchmark(lambda: compare_sweeps(jobs=2))
    assert cmp["identical"]
    assert all(p.correct for p in cmp["parallel"])


def bench_vector_point_speedup(benchmark):
    # The tentpole claim: the vector engine executes a point >= 100x faster
    # than the reference engine's per-op path (ISSUE 6 targets 100-1000x).
    pytest.importorskip("numpy")
    speedup = benchmark(lambda: vector_speedup()["vs_reference_scalar"])
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= 100.0, f"vector engine only {speedup:.0f}x reference"


def bench_table1_sweep_reaches_1e5(benchmark):
    # The scale claim: a Table 1 parity sweep completes at n >= 10^5 on both
    # engines, correct, with bit-identical simulated costs.
    def run():
        return table1_engine_sweep(ns=[10**5], jobs=1)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(p.correct for p in points)
    measured = {p.measured for p in points}
    assert len(measured) == 1, f"engines disagree on simulated cost: {measured}"


if __name__ == "__main__":
    main()
