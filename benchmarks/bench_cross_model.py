"""Experiment XMODEL — the cross-model Table 1.

One table per problem (Parity, OR, ListRank), one row per model:

    QSM | s-QSM | QSM(g,d) | BSP | PRAM (CRCW) | MPC | PEM

Every row runs the best matching upper-bound algorithm on that model's
simulator and prints the measured simulated cost next to the encoded lower
bound (``repro.lowerbounds.formulas``).  The point of the table is the 1998
paper's thesis extended past 1998: the *same* problems, executed over the
*same* phase/superstep IR, separate cleanly by what each model charges for
— contention (QSM family), latency (BSP), nothing (CRCW PRAM), per-round
message capacity (MPC), block transfers (PEM).

Measured/bound units are per-row: model time for the QSM family and BSP,
unit steps for the PRAM, effective rounds for MPC
(:func:`repro.core.cost.mpc_round_cost`), parallel block I/Os for PEM
(:func:`repro.core.cost.pem_phase_cost`).  Bounds are evaluated at each
row's machine parameters; the regimes are chosen so the bound premises
hold:

* MPC runs ``p = n/s`` machines so the input starts block-distributed at
  the local-memory limit — the regime of the ``log_s n`` fan-in bound.
* PEM bounds are evaluated at ``p = ceil(n/B)`` (one processor per input
  block), the full-parallelism regime its tree algorithms use.
* QSM(g,d) rows reuse the QSM bounds: the QSM(g,d) charges
  ``d * kappa >= kappa``, so every QSM lower bound transfers verbatim.
* ListRank rows for the 1998 models use the parity bounds, carried over by
  the paper's size-preserving parity -> list-ranking reduction
  (:mod:`repro.algorithms.reductions`).

Run as ``python -m repro xmodel`` (honours ``--jobs``), or under ``pytest
benchmarks/`` for the asserting targets.  ``collect()`` emits the committed
``BENCH_cross_model.json`` baseline that ``python -m repro bench check``
gates on (deterministic simulated costs: 1% tolerance), including the
MPC/PEM reference-vs-vector engine bit-equality bits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from benchmarks.common import (
    CellRow,
    format_dominant,
    ns_from_env,
    print_rows,
    summarise_cell,
    sweep_cache_kwargs,
)
from repro.algorithms.list_ranking import list_rank, list_rank_bsp
from repro.algorithms.mpc import list_rank_mpc, or_mpc, parity_mpc
from repro.algorithms.or_ import or_bsp, or_tree_writes
from repro.algorithms.parity import parity_blocks, parity_bsp, parity_tree
from repro.algorithms.pram_algos import or_crcw, parity_crcw
from repro.analysis.parallel_sweep import default_jobs, parallel_sweep
from repro.core import (
    BSP,
    BSPParams,
    PRAM,
    PRAMParams,
    QSM,
    QSMGD,
    QSMGDParams,
    QSMParams,
    SQSM,
    SQSMParams,
    have_numpy,
)
from repro.lowerbounds.formulas import (
    bsp_or_det_time,
    bsp_parity_det_time,
    mpc_listrank_rounds,
    mpc_or_rounds,
    mpc_parity_rounds,
    pem_listrank_io,
    pem_scan_io,
    pram_listrank_steps,
    pram_or_steps,
    pram_parity_steps,
    qsm_or_det_time,
    qsm_parity_det_time,
    sqsm_or_det_time,
    sqsm_parity_det_time,
)
from repro.models import MPC, MPCParams, PEM, PEMParams
from repro.obs import dominant_fractions
from repro.problems import gen_bits, gen_list, verify_list_ranks, verify_or, verify_parity

#: Input sizes; a dedicated env var (not ``REPRO_BENCH_NS``) so CI smoke
#: grids can't silently change the point keys ``bench check`` diffs.
NS = ns_from_env([64, 256], env="REPRO_CROSS_MODEL_NS")

MODELS = ["QSM", "s-QSM", "QSM(g,d)", "BSP", "PRAM", "MPC", "PEM"]
PROBLEMS = ["Parity", "OR", "ListRank"]

# Fixed model parameters (echoed in the printed rows).
G = 4.0            # QSM / s-QSM / QSM(g,d) gap
D = 2.0            # QSM(g,d) memory gap
BSP_G, BSP_L = 2.0, 8.0
MPC_S = 4.0        # MPC local memory (machines hold s words of input)
PEM_M, PEM_B = 64, 8

#: Cost unit per model row (the ``variant`` column of the table).
UNITS = {
    "QSM": "time", "s-QSM": "time", "QSM(g,d)": "time", "BSP": "time",
    "PRAM": "steps", "MPC": "rounds", "PEM": "io",
}


def _pcount(model: str, n: int) -> int:
    """Processor/machine count a row's algorithm and bound both use."""
    if model == "BSP":
        return max(2, min(16, n // 4))
    if model == "MPC":
        # p = n/s machines: the input starts block-distributed with s words
        # per machine, the premise of the log_s n fan-in bound.
        return max(2, n // int(MPC_S))
    if model == "PEM":
        return max(1, -(-n // PEM_B))  # one processor per input block
    return n


def _machine(model: str, n: int, engine: Optional[str] = None):
    if model == "QSM":
        return QSM(QSMParams(g=G), record_costs=True, engine=engine)
    if model == "s-QSM":
        return SQSM(SQSMParams(g=G), record_costs=True, engine=engine)
    if model == "QSM(g,d)":
        return QSMGD(QSMGDParams(g=G, d=D), record_costs=True, engine=engine)
    if model == "BSP":
        return BSP(_pcount(model, n), BSPParams(g=BSP_G, L=BSP_L),
                   record_costs=True, engine=engine)
    if model == "PRAM":
        return PRAM(PRAMParams(variant="CRCW", write_rule="arbitrary"),
                    record_costs=True, engine=engine)
    if model == "MPC":
        return MPC(_pcount(model, n), MPCParams(s=MPC_S),
                   record_costs=True, engine=engine)
    if model == "PEM":
        return PEM(PEMParams(M=PEM_M, B=PEM_B), record_costs=True, engine=engine)
    raise ValueError(f"unknown model {model!r}")


def _params_label(model: str, n: int) -> str:
    if model in ("QSM", "s-QSM"):
        return f"g={G:g}"
    if model == "QSM(g,d)":
        return f"g={G:g},d={D:g}"
    if model == "BSP":
        return f"g={BSP_G:g},L={BSP_L:g},p={_pcount(model, n)}"
    if model == "PRAM":
        return "CRCW"
    if model == "MPC":
        return f"s={MPC_S:g},p={_pcount(model, n)}"
    return f"M={PEM_M},B={PEM_B},p={_pcount(model, n)}"


def _bound(model: str, problem: str, n: int) -> float:
    """The encoded lower bound for one table cell, at the row's parameters."""
    if model in ("QSM", "QSM(g,d)"):
        # QSM(g,d) charges d*kappa >= kappa, so QSM bounds transfer.
        if problem == "OR":
            return qsm_or_det_time(n, G)
        return qsm_parity_det_time(n, G)  # Parity; ListRank via reduction
    if model == "s-QSM":
        if problem == "OR":
            return sqsm_or_det_time(n, G)
        return sqsm_parity_det_time(n, G)
    if model == "BSP":
        p = _pcount(model, n)
        if problem == "OR":
            return bsp_or_det_time(n, BSP_G, BSP_L, p)
        return bsp_parity_det_time(n, BSP_G, BSP_L, p)
    if model == "PRAM":
        return {"Parity": pram_parity_steps, "OR": pram_or_steps,
                "ListRank": pram_listrank_steps}[problem](n)
    if model == "MPC":
        return {"Parity": mpc_parity_rounds, "OR": mpc_or_rounds,
                "ListRank": mpc_listrank_rounds}[problem](n, MPC_S)
    if model == "PEM":
        p = _pcount(model, n)
        if problem == "ListRank":
            return pem_listrank_io(n, p, PEM_M, PEM_B)
        return pem_scan_io(n, p, PEM_M, PEM_B)
    raise ValueError(f"unknown model {model!r}")


def _tight(model: str, problem: str) -> bool:
    """Theta rows *at this bench's operating point*: the 1998 Theta entries
    reused here (s-QSM/BSP parity), the PRAM classics, and the MPC fan-in
    bound met exactly by the s-ary trees at p = n/s.  The PEM scan entries
    are Theta in the registry but not exercised tightly here: at
    p = ceil(n/B) the bound clamps to its floor of one I/O while the B-ary
    tree still pays its log_B n depth, so those rows report dominance."""
    return (model, problem) in {
        ("s-QSM", "Parity"), ("BSP", "Parity"),
        ("PRAM", "Parity"), ("PRAM", "OR"),
        ("MPC", "Parity"), ("MPC", "OR"),
    }


def _run_parity(machine, model: str, n: int):
    bits = gen_bits(n, seed=n)
    if model == "QSM":
        r = parity_blocks(machine, bits)
    elif model == "BSP":
        r = parity_bsp(machine, bits)
    elif model == "PRAM":
        r = parity_crcw(machine, bits)
    elif model == "MPC":
        r = parity_mpc(machine, bits)
    else:  # s-QSM, QSM(g,d), PEM: k-ary read-combining tree
        r = parity_tree(machine, bits)
    return r, verify_parity(bits, r.value)


def _run_or(machine, model: str, n: int):
    bits = gen_bits(n, density=0.05, seed=n)
    if model == "BSP":
        r = or_bsp(machine, bits)
    elif model == "PRAM":
        r = or_crcw(machine, bits)
    elif model == "MPC":
        r = or_mpc(machine, bits)
    else:  # QSM family + PEM: write tournament
        r = or_tree_writes(machine, bits)
    return r, verify_or(bits, r.value)


def _run_listrank(machine, model: str, n: int):
    next_ptrs, _ = gen_list(n, seed=n)
    if model == "BSP":
        r = list_rank_bsp(machine, next_ptrs)
    elif model == "MPC":
        r = list_rank_mpc(machine, next_ptrs)
    else:  # shared-memory pointer jumping (EREW pattern: PRAM-legal too)
        r = list_rank(machine, next_ptrs)
    return r, verify_list_ranks(next_ptrs, r.value)


_RUNNERS = {"Parity": _run_parity, "OR": _run_or, "ListRank": _run_listrank}


def run_cross_model_point(problem: str, model: str, n: int,
                          engine: Optional[str] = None) -> Dict[str, object]:
    """One (problem, model, n) cell as a sweep outcome (picklable)."""
    machine = _machine(model, n, engine=engine)
    r, correct = _RUNNERS[problem](machine, model, n)
    return {
        "measured": r.time,
        "bound": _bound(model, problem, n),
        "correct": correct,
        "dominant_terms": dominant_fractions(machine),
    }


def table_points(jobs: Optional[int] = None):
    """The full problem x model x n sweep, as parallel_sweep points."""
    grid = {"problem": PROBLEMS, "model": MODELS, "n": NS}
    return parallel_sweep(grid, run_cross_model_point, jobs=jobs,
                          **sweep_cache_kwargs("cross_model"))


def engine_parity(model: str, ns=None) -> bool:
    """True iff reference and vector engines agree bit-for-bit on every
    (problem, n) cell of one model — measured cost and correctness both."""
    if not have_numpy():
        return True  # vector resolves to reference; nothing to compare
    for problem in PROBLEMS:
        for n in ns if ns is not None else NS:
            ref = run_cross_model_point(problem, model, n, engine="reference")
            vec = run_cross_model_point(problem, model, n, engine="vector")
            if (ref["measured"], ref["correct"]) != (vec["measured"], vec["correct"]):
                return False
    return True


# --- the committed baseline payload (BENCH_cross_model.json) -----------------

def collect(jobs: Optional[int] = None) -> Dict[str, object]:
    """Measure the cross-model table for ``bench check``.

    Schema ``cross_model/1``: outcomes nest under ``cells.<problem>.<key>``
    (``cells``, not ``points`` — the latter is regress config-skip), each
    carrying the deterministic ``measured`` / ``bound`` / ``correct``
    trio gated at the tight 1% tolerance, plus the MPC/PEM engine
    bit-equality booleans.
    """
    jobs = default_jobs() if jobs is None else jobs
    points = table_points(jobs=jobs)
    cells: Dict[str, Dict[str, Dict[str, object]]] = {}
    for p in points:
        key = "model={model},n={n}".format(**p.params)
        cells.setdefault(p.params["problem"], {})[key] = {
            "measured": p.measured,
            "bound": p.bound,
            "correct": p.correct,
        }
    return {
        "schema": "cross_model/1",
        "models": MODELS,
        "cells": cells,
        "engines_agree_mpc": engine_parity("MPC"),
        "engines_agree_pem": engine_parity("PEM"),
    }


def write_bench_json(payload: Dict[str, object], path: Optional[str] = None) -> str:
    """Persist the measurement to ``BENCH_cross_model.json``; returns the path."""
    import json
    import os

    if path is None:
        root = os.environ.get("REPRO_BENCH_CACHE") or "."
        path = os.path.join(root, "BENCH_cross_model.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def main(jobs: Optional[int] = None) -> None:
    points = table_points(jobs=jobs)
    for problem in PROBLEMS:
        rows = [
            CellRow(
                p.params["model"],
                UNITS[p.params["model"]],
                p.params["n"],
                _params_label(p.params["model"], p.params["n"]),
                p.measured,
                p.bound,
                p.correct,
                dominant=format_dominant(p.dominant_terms),
            )
            for p in points
            if p.params["problem"] == problem
        ]
        rows.sort(key=lambda r: (MODELS.index(r.problem), r.n))
        verdicts = {}
        for model in MODELS:
            cell = [r for r in rows if r.problem == model]
            verdicts[(model, UNITS[model])] = summarise_cell(
                cell, tight=_tight(model, problem), band=12.0
            )
        print_rows(
            f"Cross-model Table 1: {problem} (measured cost vs encoded bound)",
            rows,
            verdicts,
        )
        print()
    print(
        "engine bit-equality: MPC "
        f"{'ok' if engine_parity('MPC', ns=[NS[0]]) else 'DIVERGED'}, PEM "
        f"{'ok' if engine_parity('PEM', ns=[NS[0]]) else 'DIVERGED'} "
        f"(vector backend: {have_numpy()})"
    )


# --- pytest-benchmark targets ------------------------------------------------

def bench_cross_model_dominance(benchmark):
    """Every cell answers correctly and the measured cost dominates the
    encoded bound (constant 1/2 absorbs the hidden-constant-1 convention)."""
    points = benchmark.pedantic(lambda: table_points(jobs=1), rounds=1, iterations=1)
    assert len(points) == len(PROBLEMS) * len(MODELS) * len(NS)
    assert all(p.correct for p in points), [
        p.params for p in points if not p.correct
    ]
    bad = [p.params for p in points if p.measured < 0.5 * p.bound]
    assert not bad, f"measured fell below the lower bound at: {bad}"


def bench_cross_model_mpc_tightness(benchmark):
    """The MPC aggregation rows meet the log_s n fan-in bound exactly at
    the p = n/s operating point (measured effective rounds == bound)."""
    def run():
        return [run_cross_model_point(prob, "MPC", n)
                for prob in ("Parity", "OR") for n in NS]

    outs = benchmark.pedantic(run, rounds=1, iterations=1)
    for out in outs:
        assert out["correct"]
        assert out["measured"] == pytest.approx(out["bound"])


def bench_cross_model_engine_bit_equality(benchmark):
    """MPC and PEM produce bit-identical costs on both engines."""
    pytest.importorskip("numpy")
    ok = benchmark.pedantic(
        lambda: engine_parity("MPC", ns=[NS[0]]) and engine_parity("PEM", ns=[NS[0]]),
        rounds=1, iterations=1,
    )
    assert ok


if __name__ == "__main__":
    main()
