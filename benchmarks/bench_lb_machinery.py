"""Experiments LB-* — the lower-bound proof machinery on live runs.

* LB-degree: replay the Theorem 3.1 degree recurrence over real GSM runs of
  parity and OR; report the certified time bound vs the measured time
  (slack >= 1 is the theorem holding) and brute-force actual cell degrees at
  tiny r to confirm they stay under the envelope while reaching full degree
  at the output.
* LB-adversary: drive the Section 5 REFINE against parity and check the
  t-goodness reports; drive the Section 7 adversary against OR and evaluate
  the exact Theorem 7.1 success-probability game for honest and constant
  algorithms.
* LB-clb: run all three Theorem 6.1 reduction arms on random CLB instances
  and report success rates and simulated costs.
"""

from __future__ import annotations

import pytest

from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_tree
from repro.analysis import render_table
from repro.core import GSM, QSM, GSMParams, QSMParams
from repro.lowerbounds.adversary import GSMOracle
from repro.lowerbounds.clb import (
    clb_via_lac,
    clb_via_load_balance,
    clb_via_padded_sort,
    gen_clb,
)
from repro.lowerbounds.degree_argument import (
    check_run,
    degree_envelope,
    measure_cell_degrees,
)
from repro.lowerbounds.refine_lac import run_adversary
from repro.lowerbounds.refine_or import ORMixture, or_success_probability
from repro.problems import gen_bits

OUT = 5000


def degree_certificates():
    rows = []
    for n in (32, 128, 512):
        for name, alg in (("parity", parity_tree), ("OR", or_tree_writes)):
            m = GSM(GSMParams(alpha=2, beta=2))
            alg(m, gen_bits(n, seed=n))
            cert = check_run(m, target_degree=n)
            rows.append(
                [name, n, round(cert.certified_bound, 2), cert.measured_time,
                 round(cert.slack, 2), cert.reached and cert.satisfies_bound]
            )
    return rows


def measured_degree_vs_envelope(r: int = 5):
    def alg(machine, bits):
        parity_tree(machine, bits, fan_in=2)

    degs = measure_cell_degrees(alg, r=r)
    ref = GSM(GSMParams(), record_snapshots=True)
    parity_tree(ref, [0] * r, fan_in=2)
    env = degree_envelope(ref.history)
    rows = []
    for t in sorted(degs):
        actual = max(degs[t]) if degs[t] else 0
        rows.append([t, actual, round(env[t + 1], 0), actual <= env[t + 1]])
    return rows


def adversary_goodness(n: int = 6):
    def alg(machine, bits):
        parity_tree(machine, bits, fan_in=2)

    oracle = GSMOracle(alg, n)
    _, reports = run_adversary(oracle, T=4, rng=0)
    return [
        [rep.t, rep.max_states, rep.max_know, rep.max_aff_cell, rep.inputs_set, rep.is_t_good]
        for rep in reports
    ]


def theorem71_game():
    def honest(machine, bits):
        r = or_tree_writes(machine, bits, fan_in=2)
        with machine.phase() as ph:
            ph.write(0, OUT, r.value)

    def const_zero(machine, bits):
        with machine.phase() as ph:
            ph.write(0, OUT, 0)

    mix = ORMixture(groups=8, gamma=1, mu=1.0, levels=2, d_sequence=[4.0, 16.0])
    p_honest = or_success_probability(GSMOracle(honest, 8), OUT, mix)
    p_zero = or_success_probability(GSMOracle(const_zero, 8), OUT, mix)
    return p_honest, p_zero


def influence_spread_check():
    """Theorem 3.3's counting argument at full scale: the influence cone of
    any input bit in a fan-in-k combining tree grows by at most a factor
    (1+k) per phase, checked on a 4096-bit QSM run via the linear-time
    trace tracker (far beyond the exhaustive oracle's reach)."""
    from repro.algorithms.parity import parity_tree as ptree
    from repro.lowerbounds.influence import influence_cone, spread_ceiling_ok

    rows = []
    for k in (2, 4, 8):
        m = QSM(QSMParams(g=2), record_trace=True)
        ptree(m, gen_bits(4096, seed=k), fan_in=k)
        for i in (0, 2048, 4095):
            cone = influence_cone(m.traces, [i])
            final = len(cone.cells[-1]) + len(cone.procs[-1])
            ok = spread_ceiling_ok(cone, per_phase_factor=float(k), slack=2.0)
            rows.append([k, i, cone.phases, final, ok])
    return rows


def gsm_h_rounds_check():
    """Theorem 6.3 on live runs: LAC rounds on the GSM(h) vs the bound.

    With alpha = beta = 1 the GSM(h) round budget is ``h`` time per phase;
    fan-in-h prefix compaction fits each phase exactly into one round.  The
    audited round count must dominate
    ``sqrt(log(n/(d gamma)) / log(mu h / lambda))``.
    """
    from repro.algorithms.compaction import lac_prefix
    from repro.core import GSM, GSMParams
    from repro.core.rounds import gsm_h_round_budget
    from repro.lowerbounds.formulas import gsm_h_lac_rounds
    from repro.problems import gen_sparse_array, verify_lac

    rows = []
    for n, h in ((256, 4), (1024, 8), (4096, 8), (4096, 32)):
        prm = GSMParams(alpha=1, beta=1, gamma=1)
        machine = GSM(prm)
        budget = gsm_h_round_budget(prm, h)
        arr = gen_sparse_array(n, max(1, n // 16), seed=n + h, exact=True)
        r = lac_prefix(machine, arr, fan_in=max(2, int(h)))
        ok = verify_lac(arr, r.value, max(1, n // 16))
        rounds = 0
        violations = 0
        for cost in machine.phase_costs:
            rounds += 1
            if cost > budget:
                violations += 1
        d = r.extra["destination_size"]
        bound = gsm_h_lac_rounds(n, 1, 1, 1, h, max(d, 1))
        rows.append([n, h, rounds, round(bound, 2), violations, ok and rounds >= bound])
    return rows


def clb_arms(trials: int = 6):
    results = {"load-balance": 0, "LAC": 0, "padded-sort": 0}
    for seed in range(trials):
        inst = gen_clb(n=48, m=2, seed=seed)
        r1 = clb_via_load_balance(QSM(QSMParams(g=2)), inst, chosen_color=inst.colors[0])
        r2 = clb_via_lac(QSM(QSMParams(g=2)), inst, chosen_color=inst.colors[0], seed=seed)
        r3 = clb_via_padded_sort(QSM(QSMParams(g=2)), inst, seed=seed)
        results["load-balance"] += 0 if r1.extra.get("failed") else 1
        results["LAC"] += 0 if r2.extra.get("failed") else 1
        results["padded-sort"] += 0 if r3.extra.get("failed") else 1
    return results, trials


def main() -> None:
    print(render_table(
        ["algorithm", "n", "certified bound", "measured time", "slack", "certified"],
        degree_certificates(),
        title="LB-degree: Theorem 3.1/7.2 certificates on live GSM runs",
    ))
    print()
    print(render_table(
        ["phase", "max actual cell degree", "envelope b_t", "within"],
        measured_degree_vs_envelope(),
        title="LB-degree: brute-forced cell degrees vs the proof's envelope (r=5)",
    ))
    print()
    print(render_table(
        ["t", "max|States|", "max|Know|", "max|AffCell|", "inputs set", "t-good"],
        adversary_goodness(),
        title="LB-adversary: Section 5 REFINE trajectory against parity (n=6)",
    ))
    print()
    p_honest, p_zero = theorem71_game()
    print("LB-adversary: Theorem 7.1 game over the Section 7 mixture:")
    print(f"  honest OR algorithm success = {p_honest:.4f}  (must be 1.0)")
    print(f"  constant-0 'fast' algorithm = {p_zero:.4f}  (bounded near 1/2 + eps)")
    print()
    print(render_table(
        ["fan-in k", "input", "phases", "|cone| at end", "<= 2*(1+k)^t"],
        influence_spread_check(),
        title="LB-degree: Theorem 3.3's g^T spread ceiling on 4096-bit runs",
    ))
    print()
    print(render_table(
        ["n", "h", "audited GSM(h) rounds", "Thm 6.3 bound", "budget violations", "ok"],
        gsm_h_rounds_check(),
        title="LB-degree: Theorem 6.3 — LAC rounds on the relaxed-round GSM(h)",
    ))
    print()
    results, trials = clb_arms()
    print("LB-clb: Theorem 6.1 reduction arms on random CLB instances:")
    for arm, wins in results.items():
        print(f"  via {arm:13s}: {wins}/{trials} instances solved")


# --- pytest-benchmark targets ------------------------------------------------

def bench_lb_degree_certificates(benchmark):
    rows = benchmark(degree_certificates)
    assert all(r[-1] for r in rows)


def bench_lb_degree_brute_force(benchmark):
    rows = benchmark(measured_degree_vs_envelope)
    assert all(r[-1] for r in rows)


def bench_lb_adversary_goodness(benchmark):
    rows = benchmark(adversary_goodness)
    assert all(r[-1] for r in rows)


def bench_lb_theorem71_game(benchmark):
    p_honest, p_zero = benchmark(theorem71_game)
    assert p_honest == pytest.approx(1.0)
    assert p_zero < 0.875


def bench_lb_influence_spread(benchmark):
    rows = benchmark(influence_spread_check)
    assert all(r[-1] for r in rows)


def bench_lb_gsm_h_rounds(benchmark):
    rows = benchmark(gsm_h_rounds_check)
    assert all(r[-1] for r in rows)  # verified + rounds dominate the bound
    assert all(r[4] == 0 for r in rows)  # every phase fit the GSM(h) budget


def bench_lb_clb_reductions(benchmark):
    results, trials = benchmark(clb_arms)
    for arm, wins in results.items():
        assert wins >= trials - 1, f"{arm} failed too often"


if __name__ == "__main__":
    main()
