"""The Section 6 problem family as a pipeline: LAC, load balancing, padded sort.

A scenario the paper's introduction motivates: a parallel machine holds a
sparse set of live tasks scattered over a large array (e.g. survivors of a
filtering step).  To proceed it must (1) compact them into a dense region
(LAC), (2) spread them evenly over the processors (load balancing), and
(3) order them by a priority drawn from [0,1] (padded sort).  This example
runs the full pipeline on a QSM, verifying every stage and accounting the
simulated time of each, then shows the randomized-vs-deterministic LAC
trade-off the paper's bounds describe.

Run:  python examples/compaction_pipeline.py
"""

from repro.algorithms.compaction import lac_dart, lac_prefix
from repro.algorithms.load_balance import load_balance
from repro.algorithms.padded_sort import padded_sort
from repro.analysis import render_table
from repro.core import QSM, QSMParams
from repro.lowerbounds.formulas import qsm_lac_det_time, qsm_lac_rand_time
from repro.problems import (
    gen_sparse_array,
    verify_lac,
    verify_load_balance,
    verify_padded_sort,
)
from repro.util.seeding import derive_rng


def main() -> None:
    n, g = 4096, 8.0
    h = n // 32
    procs = 64
    rng = derive_rng(11)

    machine = QSM(QSMParams(g=g), seed=0)
    print(f"pipeline on QSM(g={g:g}): n={n} cells, h={h} live tasks, {procs} processors\n")

    # Stage 1 — LAC: compact the sparse task array.
    tasks = gen_sparse_array(n, h, seed=5, exact=True)
    t0 = machine.time
    compacted = lac_dart(machine, tasks, h=h, seed=6)
    assert verify_lac(tasks, compacted.value, h)
    t_lac = machine.time - t0
    live = [v for v in compacted.value if v is not None]

    # Stage 2 — load balancing: deal the compacted tasks to processors.
    loads = [[] for _ in range(procs)]
    for k, task in enumerate(live):
        loads[k % 7 % procs].append(task)  # skewed initial placement
    t0 = machine.time
    balanced = load_balance(machine, loads)
    assert verify_load_balance(loads, balanced.value)
    t_lb = machine.time - t0

    # Stage 3 — padded sort: order tasks by a [0,1] priority.
    priorities = [float(p) for p in rng.random(len(live))]
    t0 = machine.time
    ordered = padded_sort(machine, priorities, seed=7)
    assert verify_padded_sort(priorities, ordered.value)
    t_sort = machine.time - t0

    print(render_table(
        ["stage", "simulated time", "phases", "notes"],
        [
            ["LAC (dart throwing)", t_lac, compacted.phases,
             f"{compacted.extra['rounds']} dart rounds, dest {compacted.extra['destination_size']} cells"],
            ["load balancing", t_lb, balanced.phases,
             f"max {balanced.extra['per_proc_max']} tasks/processor"],
            ["padded sort", t_sort, ordered.phases,
             f"output {ordered.extra['output_size']} cells ({ordered.extra['restarts']} restarts)"],
            ["total", machine.time, machine.phase_count, ""],
        ],
        title="Pipeline accounting",
    ))

    # The LAC trade-off of Table 1a: randomized beats deterministic.
    print("\nLAC: randomized vs deterministic vs the Table 1a lower bounds")
    rows = []
    for n_ in (256, 1024, 4096):
        h_ = n_ // 32
        arr = gen_sparse_array(n_, h_, seed=n_, exact=True)
        m1 = QSM(QSMParams(g=g))
        t_dart = lac_dart(m1, arr, h=h_, seed=n_).time
        m2 = QSM(QSMParams(g=g))
        t_det = lac_prefix(m2, arr, h=h_).time
        rows.append([
            n_, t_dart, round(qsm_lac_rand_time(n_, g), 1),
            t_det, round(qsm_lac_det_time(n_, g), 1),
        ])
    print(render_table(
        ["n", "dart time", "rand LB", "prefix time", "det LB"],
        rows,
    ))


if __name__ == "__main__":
    main()
