"""Work-efficiency and rounds: Section 2.3's motivation, measured.

The paper's 'rounds' results exist because on machines with high latency or
synchronization costs one wants *linear-work* algorithms — and any
linear-work algorithm must compute in rounds.  This example makes the
trade-offs concrete on the s-QSM and BSP:

1. sweep p for parity at fixed n, reporting rounds, simulated time, work
   (p x time), and the linear-work ratio (p x T)/(g n);
2. verify Section 2.3's ceiling: an r-round computation performs at most
   O(r g n) work (O(r (g n + L p)) on the BSP);
3. show the rounds bound Theta(log n / log(n/p)) bending as p approaches n
   — the regime where rounds get expensive, which is exactly where the
   Table 1d lower bounds bite.

Run:  python examples/rounds_and_work.py
"""

from repro.algorithms.parity import parity_bsp, parity_rounds
from repro.analysis import render_table
from repro.core import BSP, SQSM, BSPParams, SQSMParams
from repro.core.rounds import (
    RoundAuditor,
    linear_work_ratio,
    round_work_bound,
    total_work,
)
from repro.lowerbounds.formulas import sqsm_parity_rounds
from repro.problems import gen_bits, verify_parity


def sqsm_sweep(n: int, g: float):
    rows = []
    p = 2
    while p <= n:
        bits = gen_bits(n, seed=p)
        m = SQSM(SQSMParams(g=g))
        aud = RoundAuditor(m, n=n, p=p)
        r = parity_rounds(m, bits, p=p)
        assert verify_parity(bits, r.value)
        rounds = aud.audit()
        assert aud.computes_in_rounds
        work = total_work(m, p)
        ceiling = round_work_bound(m, n, p, rounds)
        assert work <= ceiling + 1e-9
        rows.append([
            p,
            rounds,
            round(sqsm_parity_rounds(n, g, p), 2),
            m.time,
            work,
            round(linear_work_ratio(m, n, p), 2),
            ceiling,
        ])
        p *= 8
    return rows


def bsp_sweep(n: int, g: float, L: float):
    rows = []
    for p in (4, 16, 64, 256):
        bits = gen_bits(n, seed=p)
        b = BSP(p, BSPParams(g=g, L=L))
        aud = RoundAuditor(b, n=n, p=p)
        r = parity_bsp(b, bits)
        assert verify_parity(bits, r.value)
        rounds = aud.audit()
        work = total_work(b, p)
        rows.append([
            p,
            rounds,
            "yes" if aud.computes_in_rounds else "NO",
            b.time,
            work,
            round_work_bound(b, n, p, rounds),
        ])
    return rows


def main() -> None:
    n, g, L = 4096, 4.0, 32.0
    print(render_table(
        ["p", "rounds", "Theta bound", "time", "work pT", "work/(gn)", "O(rgn) ceiling"],
        sqsm_sweep(n, g),
        title=f"s-QSM parity, n={n}, g={g:g}: rounds vs work as p grows",
    ))
    print("""
Reading it: with few processors each round is long but the round count is
tiny and work stays near-linear; as p -> n the round count climbs toward the
Theta(log n / log(n/p)) wall of Table 1d, and per Section 2.3 the work of an
r-round computation stays under r*g*n (last column) throughout.
""")
    print(render_table(
        ["p", "supersteps", "in rounds?", "time", "work pT", "O(r(gn+Lp)) ceiling"],
        bsp_sweep(n, g, L),
        title=f"BSP parity, n={n}, g={g:g}, L={L:g}: the latency floor in the work ledger",
    ))


if __name__ == "__main__":
    main()
