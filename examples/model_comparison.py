"""Model comparison: the same problems across QSM, s-QSM, GSM and BSP.

The paper's motivating question is how general-purpose model choice changes
the complexity of basic problems.  This example runs parity and OR on all
four models over sweeps of the machine parameters and prints the measured
simulated costs next to each model's Table 1 bound, making the structural
differences visible:

* the QSM's cheap queue contention lets OR tournaments use fan-in g
  (time ~ g log n / log g), while the s-QSM pays g per contention unit
  (time ~ g log n);
* the BSP's latency L shows up as a per-superstep floor, so its costs step
  in units of L;
* the GSM (the paper's lower-bound model) is the cheapest of all — which is
  exactly why bounds proved on it transfer upward.

Run:  python examples/model_comparison.py
"""

from repro.algorithms.or_ import or_bsp, or_tree_writes
from repro.algorithms.parity import parity_bsp, parity_tree
from repro.analysis import render_table
from repro.core import BSP, GSM, QSM, SQSM, BSPParams, GSMParams, QSMParams, SQSMParams
from repro.lowerbounds.formulas import (
    bsp_or_det_time,
    bsp_parity_det_time,
    qsm_or_det_time,
    qsm_parity_det_time,
    sqsm_or_det_time,
    sqsm_parity_det_time,
)
from repro.problems import gen_bits, verify_or, verify_parity


def parity_rows(n: int, g: float, L: float, p: int):
    bits = gen_bits(n, seed=1)
    rows = []

    m = QSM(QSMParams(g=g))
    r = parity_tree(m, bits)
    assert verify_parity(bits, r.value)
    rows.append(["QSM", f"g={g:g}", r.time, round(qsm_parity_det_time(n, g), 1)])

    m = SQSM(SQSMParams(g=g))
    r = parity_tree(m, bits)
    rows.append(["s-QSM", f"g={g:g}", r.time, round(sqsm_parity_det_time(n, g), 1)])

    m = GSM(GSMParams(alpha=g, beta=g))
    r = parity_tree(m, bits)
    rows.append(["GSM", f"a=b={g:g}", r.time, "-"])

    b = BSP(p, BSPParams(g=g, L=L))
    r = parity_bsp(b, bits)
    rows.append([
        "BSP", f"g={g:g},L={L:g},p={p}", r.time, round(bsp_parity_det_time(n, g, L, p), 1)
    ])
    return rows


def or_rows(n: int, g: float, L: float, p: int):
    bits = gen_bits(n, density=0.05, seed=2)
    rows = []
    for name, machine in (
        ("QSM", QSM(QSMParams(g=g))),
        ("s-QSM", SQSM(SQSMParams(g=g))),
        ("GSM", GSM(GSMParams(alpha=g, beta=g))),
    ):
        r = or_tree_writes(machine, bits)
        assert verify_or(bits, r.value)
        bound = {
            "QSM": qsm_or_det_time(n, g),
            "s-QSM": sqsm_or_det_time(n, g),
            "GSM": None,
        }[name]
        rows.append([name, f"fan-in {r.extra['fan_in']}", r.time,
                     round(bound, 1) if bound else "-"])
    b = BSP(p, BSPParams(g=g, L=L))
    r = or_bsp(b, bits)
    rows.append(["BSP", f"fan-in {r.extra['fan_in']}", r.time,
                 round(bsp_or_det_time(n, g, L, p), 1)])
    return rows


def main() -> None:
    n, g, L, p = 4096, 8.0, 32.0, 64
    print(render_table(
        ["model", "params", "simulated time", "Table 1 bound"],
        parity_rows(n, g, L, p),
        title=f"Parity of n={n} bits across the four models",
    ))
    print()
    print(render_table(
        ["model", "tournament", "simulated time", "Table 1 bound"],
        or_rows(n, g, L, p),
        title=f"OR of n={n} bits across the four models",
    ))
    print()
    print("Gap-parameter sweep (parity, n=4096): the QSM/s-QSM split")
    print("(QSM runs the depth-2 circuit emulation, which exploits the QSM's")
    print(" cheap queue contention; the s-QSM must stick to the binary tree)")
    print(f"  {'g':>4} | {'QSM time':>9} | {'s-QSM time':>10} | ratio")
    from repro.algorithms.parity import parity_blocks

    for g_ in (2.0, 4.0, 8.0, 16.0, 32.0):
        bits = gen_bits(4096, seed=3)
        tq = parity_blocks(QSM(QSMParams(g=g_)), bits).time
        ts = parity_tree(SQSM(SQSMParams(g=g_)), bits).time
        print(f"  {g_:4g} | {tq:9g} | {ts:10g} | {ts/tq:5.2f}")

    # The PRAM lineage behind the paper's techniques: forbidden ->
    # charged -> free concurrency.
    from repro.algorithms.pram_algos import or_crcw, parity_crcw, parity_erew
    from repro.core import PRAM, PRAMParams

    bits = gen_bits(1024, seed=4)
    print("\nThe model lineage at n=1024 (steps / simulated time):")
    print(f"  parity  EREW PRAM        : {parity_erew(PRAM(PRAMParams('EREW')), bits).time:6.0f}   (Theta(log n))")
    print(f"  parity  QRQW (QSM g=1)   : {parity_blocks(QSM(QSMParams(g=1)), bits, block_size=4).time:6.0f}   (contention charged)")
    print(f"  parity  CRCW PRAM        : {parity_crcw(PRAM(PRAMParams('CRCW', 'common')), bits).time:6.0f}   (Theta(log n/loglog n))")
    print(f"  OR      CRCW PRAM        : {or_crcw(PRAM(PRAMParams('CRCW', 'common')), bits).time:6.0f}   (O(1))")


if __name__ == "__main__":
    main()
