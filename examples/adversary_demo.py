"""The paper's proof machinery, live: degree arguments and the Random Adversary.

This example demonstrates the three lower-bound engines on concrete
algorithms at small n:

1. **Degree argument (Theorems 3.1/7.2).**  Run the binary parity tree on a
   GSM, replay its trace through the degree recurrence
   ``b_i = (3 + tau_i + 2 tau'_i) b_{i-1}``, and brute-force the *actual*
   multilinear degree of every memory cell over all 2^r inputs: the actual
   degrees stay under the envelope and the output reaches full degree r —
   which is why the time bound ``mu log r / log 6mu`` is unavoidable.

2. **Section 5 Random Adversary.**  Drive REFINE against the parity tree,
   watching the t-goodness quantities (|States|, |Know|, |AffCell|, inputs
   fixed) evolve exactly as the proof's invariants describe.

3. **Section 7 modified adversary + Theorem 7.1 game.**  Build the layered
   OR mixture, and evaluate the exact success probability of an honest OR
   algorithm (1.0) versus 'fast' constant-answer algorithms (pinned near
   1/2) — the quantitative heart of the Omega(log* n) OR bound.

Run:  python examples/adversary_demo.py
"""

from repro.algorithms.or_ import or_tree_writes
from repro.algorithms.parity import parity_tree
from repro.analysis import render_table
from repro.core import GSM, GSMParams
from repro.lowerbounds.adversary import GSMOracle
from repro.lowerbounds.degree_argument import (
    check_run,
    degree_envelope,
    measure_cell_degrees,
)
from repro.lowerbounds.refine_lac import run_adversary
from repro.lowerbounds.refine_or import ORMixture, or_success_probability

OUT = 4242


def demo_degree_argument() -> None:
    r = 5
    print(f"--- 1. degree argument on parity of r={r} bits " + "-" * 20)

    def alg(machine, bits):
        parity_tree(machine, bits, fan_in=2)

    degs = measure_cell_degrees(alg, r=r)
    ref = GSM(GSMParams(), record_snapshots=True)
    parity_tree(ref, [0] * r, fan_in=2)
    env = degree_envelope(ref.history)
    rows = [
        [t, max(degs[t]) if degs[t] else 0, round(env[t + 1])]
        for t in sorted(degs)
    ]
    print(render_table(["phase", "max actual cell degree", "envelope b_t"], rows))

    m = GSM(GSMParams(alpha=2, beta=2))
    parity_tree(m, [1, 0, 1, 0, 1] * 13)  # n = 65
    cert = check_run(m, target_degree=65)
    print(f"\nTheorem 3.1 certificate on a live n=65 run:")
    print(f"  certified minimum time = {cert.certified_bound:.2f}")
    print(f"  measured time          = {cert.measured_time:g}")
    print(f"  bound holds            = {cert.satisfies_bound} (slack {cert.slack:.2f}x)\n")


def demo_section5_adversary() -> None:
    n = 6
    print(f"--- 2. Section 5 Random Adversary vs parity tree (n={n}) " + "-" * 10)

    def alg(machine, bits):
        parity_tree(machine, bits, fan_in=2)

    oracle = GSMOracle(alg, n)
    final, reports = run_adversary(oracle, T=4, rng=0)
    rows = [
        [rep.t, rep.max_states, rep.max_know, rep.max_aff_cell, rep.inputs_set,
         rep.is_t_good]
        for rep in reports
    ]
    print(render_table(
        ["t", "max|States|", "max|Know|", "max|AffCell|", "inputs fixed", "t-good"],
        rows,
    ))
    print(f"final partial input map: {final}\n")


def demo_theorem71_game() -> None:
    print("--- 3. Section 7 mixture and the Theorem 7.1 game " + "-" * 14)
    mix = ORMixture(groups=8, gamma=1, mu=1.0, levels=2, d_sequence=[4.0, 16.0])

    def honest(machine, bits):
        r = or_tree_writes(machine, bits, fan_in=2)
        with machine.phase() as ph:
            ph.write(0, OUT, r.value)

    def const_zero(machine, bits):
        with machine.phase() as ph:
            ph.write(0, OUT, 0)

    def const_one(machine, bits):
        with machine.phase() as ph:
            ph.write(0, OUT, 1)

    print(f"input distribution: all-zeros w.p. 1/2; H_i levels with d = {mix.d}")
    for name, alg in (("honest OR tree", honest), ("constant 0", const_zero),
                      ("constant 1", const_one)):
        p = or_success_probability(GSMOracle(alg, 8), OUT, mix)
        print(f"  success of {name:15s} over D = {p:.4f}")
    print("  => no O(1)-step algorithm beats ~1/2 + eps; the honest tree pays")
    print("     Omega(log* n) phases for its 1.0 (Theorem 7.1's dichotomy).")


def main() -> None:
    demo_degree_argument()
    demo_section5_adversary()
    demo_theorem71_game()


if __name__ == "__main__":
    main()
