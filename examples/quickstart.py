"""Quickstart: build a machine, run an algorithm, compare to the paper's bound.

Run:  python examples/quickstart.py
"""

from repro.algorithms.parity import parity_tree
from repro.analysis.timeline import explain, explain_summary
from repro.core import SQSM, SQSMParams
from repro.lowerbounds.formulas import sqsm_parity_det_time
from repro.problems import gen_bits, verify_parity


def main() -> None:
    n, g = 1024, 4.0

    # 1. Build an s-QSM with gap parameter g.  The machine charges every
    #    phase the Section 2 cost max(m_op, g*m_rw, g*kappa).  With
    #    record_costs=True it also keeps a PhaseCostRecord per phase
    #    (term values, dominant term, contention histogram) — see repro.obs.
    machine = SQSM(SQSMParams(g=g), record_costs=True)

    # 2. Run the Section 8 parity algorithm (binary read-combining tree).
    bits = gen_bits(n, seed=7)
    result = parity_tree(machine, bits)
    assert verify_parity(bits, result.value)

    # 3. Compare the simulated time against Table 1b's Theta(g log n).
    bound = sqsm_parity_det_time(n, g)
    print(f"parity of {n} bits on s-QSM(g={g:g})")
    print(f"  answer          : {result.value}")
    print(f"  phases          : {result.phases}")
    print(f"  simulated time  : {result.time:g}")
    print(f"  Table 1b bound  : {bound:g}   (Theta(g log n), tight)")
    print(f"  measured/bound  : {result.time / bound:.2f}  (constant, by tightness)")

    # 4. Where did the time go?  The per-phase breakdown shows each phase's
    #    charge and which term of the cost max() set it; the summary
    #    aggregates the run into cost-weighted dominant-term shares.
    print()
    print(explain(machine, limit=6))
    print()
    print(explain_summary(machine))


if __name__ == "__main__":
    main()
